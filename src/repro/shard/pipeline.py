"""Driver-side orchestration of the sharded CPM pipeline.

Turns each LP-CPM phase into a shard-task fan-out through the owning
:class:`~repro.core.lightweight.LightweightParallelCPM` instance's
:class:`~repro.runner.supervise.PoolSupervisor` (retry, timeout,
degradation and worker telemetry for free), then reassembles results
so the pipeline's outputs are byte-identical to the serial path:

* **Enumeration** — the shard plan partitions degeneracy-ordered
  vertices; workers return cliques keyed by vertex and the driver
  reassembles them in global vertex order (the serial kernel's exact
  emission sequence) before the usual stable size-descending sort.
* **Overlap** — node-index chunks are counted into per-``i``-shard
  word→count maps; the driver merges and bucketizes one i-shard at a
  time, bounding the merge's working set (Baudin truncation bounds
  ``j``, i-sharding bounds the merge).
* **Percolation** — each activation-order bucket is sliced across
  shards, contracted worker-side to spanning-chain words by a local
  :class:`~repro.core.unionfind.IntUnionFind`, and the reduced wire is
  stitched by one driver sweep.  Spanning chains preserve each slice's
  connectivity exactly, so the stitched components — and therefore the
  hierarchy — match the unsharded sweep.

Each fan-out checkpoints per-task results under the ``shard_*`` phases
of :class:`~repro.runner.checkpoint.CheckpointStore`, so a run killed
mid-shard resumes from the completed shards.  Supervisor phases reuse
the ``enumerate``/``overlap``/``percolate`` site names, which keeps
:class:`~repro.runner.faults.FaultPlan` specs like
``enumerate:shard=0:kill`` aimed at shard tasks.
"""

from __future__ import annotations

import time
from array import array

from ..graph.csr import CSRGraph
from ..graph.degeneracy import degeneracy_ordering
from ..obs.logging import get_logger
from ..runner.checkpoint import CheckpointStore
from .plan import ShardPlan, plan_shards
from .workers import (
    count_shard_words,
    enumerate_shard_bitset,
    enumerate_shard_set,
    install_shared,
    reduce_shard_bucket,
)

__all__ = [
    "sharded_enumerate_dense",
    "sharded_enumerate_set",
    "sharded_overlap_dense",
    "sharded_overlap_set",
    "sharded_reduce_wire",
]


# ----------------------------------------------------------------------
# Shared fan-out plumbing
# ----------------------------------------------------------------------
def _dispatch(cpm, phase: str, fn, tasks: list, payload: dict, on_result) -> None:
    """Run shard tasks through the supervisor (or in-driver serially).

    The payload is installed in the driver process too, so the
    ``workers == 1`` path and the supervisor's serial-degradation
    fallback execute against the same shared state as pool workers.
    """
    install_shared(dict(payload))
    if not tasks:
        return
    if cpm.workers == 1:
        for index, task in enumerate(tasks):
            on_result(index, fn(task))
        return
    supervisor = cpm._supervisor(phase, initializer=install_shared, initargs=(payload,))
    supervisor.run(fn, tasks, fallback=fn, on_result=on_result)
    cpm.stats.degraded = cpm.stats.degraded or supervisor.degraded


def _load_partial(cpm, ckpt: CheckpointStore | None, phase: str, signature: int) -> dict:
    """Resume one shard phase's completed tasks (empty when not resuming).

    Partials are only trusted when the stored shard signature matches
    the current plan — resuming with a different ``--shards`` setting
    recomputes the phase instead of stitching mismatched partitions.
    """
    if ckpt is None or not cpm.resume:
        return {}
    stored = ckpt.load_phase(phase)
    if not stored or stored.get("signature") != signature:
        return {}
    done = stored.get("done") or {}
    if done:
        cpm._mark_resumed(phase)
        cpm.metrics.inc("runner.resumed_shards", len(done))
    return done


def _store_partial(
    ckpt: CheckpointStore | None, phase: str, signature: int, done: dict
) -> None:
    if ckpt is not None:
        ckpt.store_phase(phase, {"signature": signature, "done": done})


#: Structured-log handle (no-op until ``--log-json`` configures one).
_LOG = get_logger(component="shard")


def _observe_plan(cpm, plan: ShardPlan, closure_rows: tuple[int, ...]) -> None:
    cpm.metrics.set_gauge("shard.count", plan.n_shards)
    cpm.metrics.set_gauge("shard.imbalance", plan.imbalance())
    _LOG.info(
        "shard.plan",
        shards=plan.n_shards,
        imbalance=round(plan.imbalance(), 4),
    )
    for s in range(plan.n_shards):
        cpm.metrics.observe("shard.cost", plan.costs[s])
        cpm.metrics.observe("shard.vertices", len(plan.owners[s]))
        if closure_rows:
            cpm.metrics.observe("shard.closure_rows", closure_rows[s])


def _absorb_enumerate_stats(cpm, stats: dict) -> None:
    cpm.metrics.observe("shard.cliques", stats["cliques"])
    cpm.metrics.observe("shard.enumerate_seconds", stats["wall_seconds"])
    cpm.metrics.observe("worker.max_rss_kib", stats["max_rss_kib"])
    cpm.metrics.inc("cliques.bk_calls", stats["bk_calls"])
    cpm.metrics.inc("cliques.bk_branches", stats["bk_branches"])
    cpm.metrics.inc("cliques.bk_pivot_candidates", stats["bk_pivot_candidates"])


# ----------------------------------------------------------------------
# Enumeration
# ----------------------------------------------------------------------
def sharded_enumerate_dense(cpm, ckpt: CheckpointStore | None):
    """Sharded Bron–Kerbosch over the CSR snapshot (bitset/blocks).

    Returns the serial kernel's exact ``(dense, cliques, n_nodes)``:
    per-vertex reassembly in ascending id order reproduces the serial
    emission sequence, and the stable size sort does the rest.
    """
    with cpm.tracer.span("cpm.enumerate") as span:
        csr = CSRGraph.from_graph(cpm.graph)
        cpm.csr = csr
        n = csr.n
        indptr, indices = csr.indptr, csr.indices
        with cpm.tracer.span("shard.plan") as plan_span:
            forward = [
                sum(1 for u in indices[indptr[v] : indptr[v + 1]] if u > v)
                for v in range(n)
            ]
            plan = plan_shards(forward, cpm.shards)
            closure_rows = []
            for owned in plan.owners:
                mask = 0
                for v in owned:
                    mask |= csr.bitsets[v] | (1 << v)
                closure_rows.append(mask.bit_count())
            closure_rows = tuple(closure_rows)
            plan_span.set("shards", plan.n_shards)
            plan_span.set("imbalance", round(plan.imbalance(), 3))
            _observe_plan(cpm, plan, closure_rows)

        payload = {"indptr": indptr, "indices": indices, "row_bytes": (n + 7) >> 3}
        done = _load_partial(cpm, ckpt, "shard_enumerate", plan.n_shards)
        tasks = [(sid, plan.owners[sid]) for sid in range(plan.n_shards) if sid not in done]

        def absorb(index: int, result) -> None:
            by_vertex, stats = result
            done[stats["shard"]] = by_vertex
            _absorb_enumerate_stats(cpm, stats)
            _store_partial(ckpt, "shard_enumerate", plan.n_shards, done)

        _dispatch(cpm, "enumerate", enumerate_shard_bitset, tasks, payload, absorb)

        by_vertex_all: dict[int, list] = {}
        for mapping in done.values():
            by_vertex_all.update(mapping)
        dense = [c for v in range(n) for c in by_vertex_all.get(v, ())]
        dense.sort(key=len, reverse=True)
        to_label = csr.labels.__getitem__
        cliques = [tuple(map(to_label, clique)) for clique in dense]
        span.set("n_cliques", len(cliques))
        span.set("kernel", cpm.kernel)
        span.set("shards", plan.n_shards)
        cpm.metrics.inc("cliques.enumerated", len(cliques))
    return dense, cliques, n


def sharded_enumerate_set(cpm, ckpt: CheckpointStore | None):
    """Sharded set-oracle enumeration; returns size-sorted frozensets."""
    with cpm.tracer.span("cpm.enumerate") as span:
        graph = cpm.graph
        order = degeneracy_ordering(graph)
        rank = {node: i for i, node in enumerate(order)}
        n = len(order)
        with cpm.tracer.span("shard.plan") as plan_span:
            forward = [
                sum(1 for u in graph.neighbors(node) if rank[u] > pos)
                for pos, node in enumerate(order)
            ]
            plan = plan_shards(forward, cpm.shards)
            closure_rows = []
            for owned in plan.owners:
                closure: set = set()
                for pos in owned:
                    closure.add(order[pos])
                    closure.update(graph.neighbors(order[pos]))
                closure_rows.append(len(closure))
            closure_rows = tuple(closure_rows)
            plan_span.set("shards", plan.n_shards)
            plan_span.set("imbalance", round(plan.imbalance(), 3))
            _observe_plan(cpm, plan, closure_rows)

        payload = {
            "order": list(order),
            "nodes": list(graph.nodes()),
            "edges": list(graph.edges()),
        }
        done = _load_partial(cpm, ckpt, "shard_enumerate", plan.n_shards)
        tasks = [(sid, plan.owners[sid]) for sid in range(plan.n_shards) if sid not in done]

        def absorb(index: int, result) -> None:
            by_vertex, stats = result
            done[stats["shard"]] = by_vertex
            _absorb_enumerate_stats(cpm, stats)
            _store_partial(ckpt, "shard_enumerate", plan.n_shards, done)

        _dispatch(cpm, "enumerate", enumerate_shard_set, tasks, payload, absorb)

        by_vertex_all: dict[int, list] = {}
        for mapping in done.values():
            by_vertex_all.update(mapping)
        cliques = [c for pos in range(n) for c in by_vertex_all.get(pos, ())]
        cliques.sort(key=len, reverse=True)
        span.set("n_cliques", len(cliques))
        span.set("kernel", "set")
        span.set("shards", plan.n_shards)
        cpm.metrics.inc("cliques.enumerated", len(cliques))
    return cliques


# ----------------------------------------------------------------------
# Overlap
# ----------------------------------------------------------------------
def _shard_bounds(n_counting: int, n_shards: int) -> list[int]:
    """Ascending clique-id cut points splitting [0, n_counting)."""
    return [(s * n_counting) // n_shards for s in range(n_shards)] + [n_counting]


def _sharded_overlap(cpm, index_lists, sizes, ckpt: CheckpointStore | None):
    """Shared overlap driver over per-node ascending clique-id lists."""
    from ..core.lightweight import LightweightParallelCPM, _prefix_count
    from ..core.overlap import OverlapWire, chain_pairs, truncate_index

    with cpm.tracer.span("cpm.overlap") as span:
        t0 = time.perf_counter()
        n_cliques = len(sizes)
        shift = max(1, n_cliques.bit_length())
        n_counting = _prefix_count(sizes, 3)
        with cpm.tracer.span("cpm.overlap.index"):
            counting = truncate_index(index_lists, n_counting)
        n_shards = cpm.shards
        bounds = _shard_bounds(n_counting, n_shards)
        chunks = LightweightParallelCPM._shard(counting, n_shards)
        span.set("shards", len(chunks))

        payload = {"shift": shift, "bounds": bounds}
        done = _load_partial(cpm, ckpt, "shard_overlap", n_shards)
        tasks = [
            (cid, chunk) for cid, chunk in enumerate(chunks) if cid not in done
        ]
        shard_reports: list[dict] = []

        def absorb(index: int, result) -> None:
            by_shard, stats = result
            done[tasks[index][0]] = by_shard
            shard_reports.append(stats)
            _store_partial(ckpt, "shard_overlap", n_shards, done)

        _dispatch(cpm, "overlap", count_shard_words, tasks, payload, absorb)
        cpm._aggregate_shard_reports(shard_reports, time.perf_counter() - t0)

        # Merge + bucketize one i-shard at a time: the working set is a
        # single shard's distinct pairs, never the global counter.
        mask = (1 << shift) - 1
        buckets: dict[int, array] = {}
        n_counted = 0
        for s in range(n_shards):
            merged: dict[int, int] = {}
            for by_shard in done.values():
                part = by_shard[s]
                if not merged:
                    merged = dict(part)
                    continue
                get = merged.get
                for word, count in part.items():
                    merged[word] = get(word, 0) + count
            n_counted += len(merged)
            for word, o in merged.items():
                if o <= 1:
                    continue
                sj = sizes[word & mask]
                k_act = sj if sj < o + 1 else o + 1
                arr = buckets.get(k_act)
                if arr is None:
                    arr = buckets[k_act] = array("q")
                arr.append(word)
            cpm.metrics.observe("shard.bucket_words", len(merged))

        chains = chain_pairs(index_lists, shift)
        wire = OverlapWire(
            n_cliques=n_cliques,
            shift=shift,
            n_pairs=sum(len(b) for b in buckets.values()),
            n_chain_pairs=len(chains),
            buckets={k: arr.tobytes() for k, arr in buckets.items()},
            chains=chains.tobytes(),
        )
        cpm.metrics.inc("overlap.pairs", n_counted)
        cpm.metrics.inc("overlap.chain_pairs", len(chains))
        span.set("pairs", n_counted)
        span.set("chain_pairs", len(chains))
        span.set("bucketed_pairs", wire.n_pairs)
        return wire, n_counted


def sharded_overlap_dense(cpm, dense, sizes, n_nodes: int, ckpt: CheckpointStore | None):
    """Sharded overlap over dense-id cliques (bitset/blocks kernels)."""
    from ..core.overlap import build_node_index

    return _sharded_overlap(cpm, build_node_index(dense, n_nodes), sizes, ckpt)


def sharded_overlap_set(cpm, cliques, sizes, ckpt: CheckpointStore | None):
    """Sharded overlap over frozenset cliques (set oracle)."""
    index: dict[object, list[int]] = {}
    for cid, clique in enumerate(cliques):
        for node in clique:
            index.setdefault(node, []).append(cid)
    return _sharded_overlap(cpm, list(index.values()), sizes, ckpt)


# ----------------------------------------------------------------------
# Percolation reduction
# ----------------------------------------------------------------------
def sharded_reduce_wire(cpm, wire, ckpt: CheckpointStore | None):
    """Contract each activation-order bucket shard-parallel.

    Slices every bucket into up to ``cpm.shards`` word chunks, reduces
    each chunk to its components' spanning chains worker-side, and
    returns a wire carrying the reduced buckets (chains untouched) for
    the driver's single stitching sweep.
    """
    from ..core.overlap import OverlapWire

    with cpm.tracer.span("shard.reduce", shards=cpm.shards) as span:
        n_shards = cpm.shards
        chunks: list[tuple[int, bytes]] = []  # (k_act, chunk bytes)
        word_size = array("q").itemsize
        for k_act in sorted(wire.buckets, reverse=True):
            blob = wire.buckets[k_act]
            n_words = len(blob) // word_size
            n_chunks = max(1, min(n_shards, n_words))
            size, extra = divmod(n_words, n_chunks)
            start = 0
            for c in range(n_chunks):
                end = start + size + (1 if c < extra else 0)
                if end > start:
                    chunks.append(
                        (k_act, blob[start * word_size : end * word_size])
                    )
                start = end

        payload = {"n_cliques": wire.n_cliques, "shift": wire.shift}
        done = _load_partial(cpm, ckpt, "shard_percolate", n_shards)
        tasks = [
            (cid, k_act, blob)
            for cid, (k_act, blob) in enumerate(chunks)
            if cid not in done
        ]
        shipped = sum(len(blob) for _, _, blob in tasks)
        pairs_in = pairs_out = 0

        def absorb(index: int, result) -> None:
            nonlocal pairs_in, pairs_out
            k_act, reduced, stats = result
            done[tasks[index][0]] = (k_act, reduced)
            pairs_in += stats["pairs_in"]
            pairs_out += stats["pairs_out"]
            cpm.metrics.observe("shard.reduce_seconds", stats["wall_seconds"])
            cpm.metrics.observe("worker.max_rss_kib", stats["max_rss_kib"])
            _store_partial(ckpt, "shard_percolate", n_shards, done)

        _dispatch(cpm, "percolate", reduce_shard_bucket, tasks, payload, absorb)
        if cpm.workers > 1:
            cpm.metrics.inc("overlap.bytes_shipped", shipped)

        reduced_buckets: dict[int, bytearray] = {}
        for cid in sorted(done):
            k_act, blob = done[cid]
            reduced_buckets.setdefault(k_act, bytearray()).extend(blob)
        reduced = OverlapWire(
            n_cliques=wire.n_cliques,
            shift=wire.shift,
            n_pairs=sum(len(b) // word_size for b in reduced_buckets.values()),
            n_chain_pairs=wire.n_chain_pairs,
            buckets={k: bytes(b) for k, b in reduced_buckets.items()},
            chains=wire.chains,
        )
        cpm.metrics.inc("shard.reduced_pairs_in", wire.n_pairs)
        cpm.metrics.inc("shard.reduced_pairs_out", reduced.n_pairs)
        span.set("pairs_in", wire.n_pairs)
        span.set("pairs_out", reduced.n_pairs)
        return reduced
