"""Tests for the dataset atlas."""

import pytest

from repro.report import build_atlas


@pytest.fixture(scope="module")
def atlas(default_context):
    return build_atlas(default_context)


class TestAtlas:
    def test_every_ixp_profiled(self, atlas, default_context):
        assert len(atlas.ixps) == len(default_context.dataset.ixps)

    def test_big_three_anchor_the_most_communities(self, atlas):
        top_names = {p.name for p in atlas.ixps[:6]}
        assert {"AMS-IX", "DE-CIX", "LINX"} & top_names

    def test_ams_ix_profile(self, atlas):
        profile = atlas.ixp("AMS-IX")
        assert profile.country == "NL"
        assert profile.max_share_of  # anchors the crown main chain
        assert "crown" in profile.bands_touched

    def test_small_ixps_have_full_shares(self, atlas):
        small = atlas.ixp("VIX")
        assert small.full_share_of
        assert "root" in small.bands_touched

    def test_country_profiles(self, atlas):
        assert atlas.countries
        busiest = atlas.countries[0]
        assert busiest.contained_communities
        assert busiest.n_ases > 0

    def test_lookup_errors(self, atlas):
        with pytest.raises(KeyError):
            atlas.ixp("NOPE-IX")
        with pytest.raises(KeyError):
            atlas.country("XX")

    def test_render(self, atlas):
        text = atlas.render(top=5)
        assert "IXP atlas" in text and "Country atlas" in text
