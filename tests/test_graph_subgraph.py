"""Unit tests for tag-induced subgraphs."""

from repro.graph import (
    Graph,
    containment_fraction,
    tag_induced_node_sets,
    tag_induced_subgraph,
)


class TestTagInducedSubgraph:
    def test_keeps_only_doubly_tagged_edges(self):
        g = Graph([(1, 2), (2, 3), (3, 4)])
        sub = tag_induced_subgraph(g, [1, 2, 4])
        assert sub.has_edge(1, 2)
        assert sub.number_of_edges == 1
        assert 4 in sub  # kept as isolated tagged node

    def test_empty_tag_set(self):
        g = Graph([(1, 2)])
        assert len(tag_induced_subgraph(g, [])) == 0


class TestTagIndex:
    def test_inversion(self):
        tags = {1: ["a"], 2: ["a", "b"], 3: ["b"]}
        index = tag_induced_node_sets([1, 2, 3], lambda n: tags[n])
        assert index == {"a": {1, 2}, "b": {2, 3}}

    def test_nodes_without_tags(self):
        index = tag_induced_node_sets([1, 2], lambda n: [] if n == 1 else ["x"])
        assert index == {"x": {2}}


class TestContainmentFraction:
    def test_full_containment(self):
        assert containment_fraction({1, 2}, {1, 2, 3}) == 1.0

    def test_partial(self):
        assert containment_fraction({1, 2, 3, 4}, {1, 2}) == 0.5

    def test_disjoint(self):
        assert containment_fraction({1}, {2}) == 0.0

    def test_empty_members(self):
        assert containment_fraction(set(), {1}) == 0.0
