"""Stateful incremental CPM: apply edge deltas, keep the hierarchy.

A :class:`CPMSession` holds the persistent percolation state of one
graph — the maximal clique set (keyed by stable integer ids over
canonical member sets), the Baudin-style truncated overlap counts (one
activation order per counted pair; overlap-1 pairs are never stored
because order-2 connectivity is re-derivable from the node→cliques
index), and the cached per-order union-find groups — and exposes
:meth:`CPMSession.apply`, which advances all of it by one
:class:`~.delta.EdgeDelta` instead of re-running CPM on the whole
graph.

Locality of one edge change (the correctness core, pinned byte-for-
byte against from-scratch ``run_cpm`` by the delta fuzz tests):

* **Insertion** of (u, v): the new maximal cliques are exactly
  ``{u, v} ∪ C`` for ``C`` maximal in the subgraph induced on
  ``N(u) ∩ N(v)`` (any extension of such a clique would be a common
  neighbor contradicting C's maximality, and any new maximal clique
  must contain the new edge).  A pre-existing clique stops being
  maximal iff it is covered by one of those, i.e. iff it contains one
  endpoint and lies inside the other endpoint's new neighborhood.
* **Deletion** of (u, v): every clique containing both endpoints dies;
  each leaves two candidates ``K \\ {u}`` and ``K \\ {v}``, and a
  candidate is a (new) maximal clique iff its members have no common
  neighbor left — candidates already covered by surviving cliques are
  exactly those with a common neighbor, and no two candidates can
  cover each other (they differ in u/v membership or would imply two
  nested maximal cliques).

Percolation is then rebuilt only for the *affected orders* — every
k up to the largest clique born or retired; higher orders cannot have
changed (none of their cliques or qualifying overlaps did) and their
cached groups are reused.  The re-sweep reads a **persistent wire**:
each retained pair's packed word is written once (at admission, into
its activation-order bucket, under a lifetime-fixed shift) and merely
tombstoned on retirement, so an ``apply`` never re-encodes the
~10^5-pair overlap state — only the order-2 chains, which depend on
the mutable node index, are rebuilt per sweep.  The hierarchy produced
is canonical in the clique *set* (ranking and parent provenance are
permutation-invariant), which is why stable session ids and fresh
pipeline ids yield identical output.

Sessions persist through the existing
:class:`~repro.runner.checkpoint.CheckpointStore` (a ``session``
phase slot keyed by the graph fingerprint), so long-running snapshot
pipelines survive process restarts; see ``docs/incremental.md``.
"""

from __future__ import annotations

import time
from array import array
from collections import Counter
from collections.abc import Hashable
from itertools import combinations
from os import PathLike
from pathlib import Path

from ..core.cache import CliqueCache
from ..core.cliques import local_maximal_cliques, maximal_cliques, maximal_cliques_bitset
from ..core.communities import CommunityHierarchy
from ..core.lightweight import resolve_kernel
from ..core.overlap import OverlapWire
from ..core.percolation import build_hierarchy, sweep_wire
from ..graph.csr import CSRGraph
from ..graph.undirected import Graph
from ..obs.logging import get_logger
from ..obs.manifest import graph_fingerprint
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import NULL_TRACER, Tracer
from ..runner.checkpoint import (
    CheckpointError,
    CheckpointMismatchError,
    CheckpointStore,
)
from .delta import CPMUpdate, EdgeDelta, diff_covers

#: Structured-log handle (no-op until ``--log-json`` configures one).
_LOG = get_logger(component="incremental")

__all__ = ["CPMSession", "load_session", "SESSION_SCHEMA_VERSION"]

#: Bump on any change to the persisted session payload layout; stale
#: saves then fail :func:`load_session` loudly instead of deserialising
#: a half-compatible state.
SESSION_SCHEMA_VERSION = 1

#: META kernel-tag prefix distinguishing a persisted session from a
#: pipeline checkpoint sharing the same directory format.
_KERNEL_TAG = "session:"

#: Pair-packing shift for the session's persistent overlap wire.
#: Fixed for the session's lifetime (stable clique ids only grow), so
#: packed words never need re-encoding; supports ids up to 2^31.
_WIRE_SHIFT = 32


def _prefix_ge(sizes_desc: list[int], k: int) -> int:
    """How many leading entries of a descending size list are >= k."""
    lo, hi = 0, len(sizes_desc)
    while lo < hi:
        mid = (lo + hi) // 2
        if sizes_desc[mid] >= k:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _graph_from_csr(csr: CSRGraph) -> Graph:
    """Rebuild an adjacency-set graph from a CSR snapshot."""
    graph = Graph()
    graph.add_nodes_from(csr.labels)
    labels = csr.labels
    for i in range(csr.n):
        u = labels[i]
        for j in csr.neighbors(i):
            if i < j:
                graph.add_edge(u, labels[j])
    return graph


class CPMSession:
    """Persistent CPM state with edge-delta updates.

    Construct from a graph (or through :func:`repro.open_session`,
    which also accepts a :class:`~repro.api.CPMResult`); the initial
    build costs one enumeration + overlap pass, after which
    :meth:`apply` advances the state in time proportional to the delta
    and the re-percolated orders — not the graph.  :meth:`result`
    returns a :class:`~repro.api.CPMResult` whose hierarchy is
    byte-identical to a from-scratch ``run_cpm`` on the current graph.

    ``kernel`` selects the Bron–Kerbosch variant for both the initial
    enumeration and the per-insertion neighborhood enumerations
    (``"set"``, ``"bitset"``, ``"blocks"`` or ``"auto"``; same
    semantics as :func:`repro.run_cpm`).  ``cache`` (a
    :class:`~repro.core.cache.CliqueCache`) is probed read-only for
    the initial clique/overlap payload a previous ``run_cpm`` may have
    left behind.  ``tracer``/``metrics`` instrument the session with
    the ``incr.*`` spans and counters of ``docs/observability.md``.

    >>> from repro.graph import ring_of_cliques
    >>> session = CPMSession(ring_of_cliques(4, 5))
    >>> update = session.apply(EdgeDelta(insertions=[(0, 10)]))
    >>> update.inserted_edges
    1
    """

    def __init__(
        self,
        graph: Graph,
        *,
        kernel: str = "bitset",
        cache: CliqueCache | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.kernel = resolve_kernel(kernel)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.graph = graph.copy()
        self._members: dict[int, frozenset] = {}
        self._index: dict[Hashable, set[int]] = {}
        self._pair_kact: dict[tuple[int, int], int] = {}
        self._slots: dict[tuple[int, int], int] = {}
        self._wire: dict[int, array] = {}
        self._wire_garbage = 0
        self._groups: dict[int, list[list[int]]] = {}
        self._next_id = 0
        self._applied = 0
        self._hierarchy: CommunityHierarchy | None = None
        self._covers_cache: dict[int, tuple[frozenset, ...]] | None = None
        self.cache_hit = False
        with self.tracer.span("incr.open", kernel=self.kernel) as span:
            t0 = time.perf_counter()
            cliques = self._initial_cliques(cache)
            for members in cliques:
                self._admit_silent(members)
            if self._pair_kact or not self._members:
                pass  # cache hit already installed the counted pairs
            else:
                self._count_pairs_initial()
            self._rebuild_wire()
            top = self.max_clique_size
            if top >= 2:
                self._repercolate(range(2, top + 1), top)
            span.set("n_cliques", len(self._members))
            span.set("n_pairs", len(self._pair_kact))
            span.set("cache_hit", int(self.cache_hit))
            self.metrics.inc("incr.sessions_opened")
            self.open_seconds = time.perf_counter() - t0

    # ------------------------------------------------------------------
    # Construction internals
    # ------------------------------------------------------------------
    def _initial_cliques(self, cache: CliqueCache | None) -> list[frozenset]:
        """Enumerate (or cache-load) the maximal cliques, size-descending.

        On a cache hit the counted pairs are installed directly from
        the stored payload too (the wire's activation buckets for the
        integer kernels, the raw overlap dict for the set kernel) —
        the cache is read-only here: a scratch build never writes it,
        because the session does not materialise the exact payload
        layout ``run_cpm`` persists.
        """
        checksum = graph_fingerprint(self.graph)["checksum"]
        payload = cache.load(checksum, self.kernel) if cache is not None else None
        if payload is not None:
            self.cache_hit = True
            self.metrics.inc("cache.hits")
            if self.kernel == "set":
                cliques = [frozenset(c) for c in payload["cliques"]]
                sizes = [len(c) for c in cliques]
                self._pair_kact = {
                    (i, j): min(sizes[j], o + 1)
                    for (i, j), o in payload["overlaps"].items()
                    if o >= 2
                }
            else:
                cliques = [frozenset(c) for c in payload["cliques"]]
                wire = payload["wire"]
                mask = (1 << wire.shift) - 1
                pairs: dict[tuple[int, int], int] = {}
                for k_act, blob in wire.buckets.items():
                    buf = array("q")
                    buf.frombytes(blob)
                    for word in buf:
                        pairs[(word >> wire.shift, word & mask)] = k_act
                self._pair_kact = pairs
            return cliques
        if cache is not None:
            self.metrics.inc("cache.misses")
        if self.kernel == "set":
            return sorted(
                maximal_cliques(self.graph, min_size=2), key=len, reverse=True
            )
        csr = CSRGraph.from_graph(self.graph)
        if self.kernel == "blocks":
            from ..core.blocks import maximal_cliques_blocks

            dense = maximal_cliques_blocks(csr, min_size=2)
        else:
            dense = maximal_cliques_bitset(csr, min_size=2)
        dense.sort(key=len, reverse=True)
        to_label = csr.labels.__getitem__
        return [frozenset(map(to_label, clique)) for clique in dense]

    def _admit_silent(self, members: frozenset) -> int:
        """Register a clique without overlap counting (initial install)."""
        cid = self._next_id
        self._next_id += 1
        self._members[cid] = members
        for node in members:
            self._index.setdefault(node, set()).add(cid)
        return cid

    def _count_pairs_initial(self) -> None:
        """Baudin-style truncated overlap counts over the installed cliques.

        Only pairs of size>=3 cliques are counted (ids below the size-3
        prefix boundary, since initial ids are size-descending) and
        only counts >= 2 are kept: an overlap-1 pair matters solely at
        k = 2, where the chain unions derived from the node index
        already provide connectivity.  This is what bounds session
        memory below the full clique-adjacency graph.
        """
        n3 = _prefix_ge([len(self._members[c]) for c in range(self._next_id)], 3)
        counts: Counter[tuple[int, int]] = Counter()
        update = counts.update
        for cids in self._index.values():
            eligible = sorted(c for c in cids if c < n3)
            if len(eligible) >= 2:
                update(combinations(eligible, 2))
        members = self._members
        self._pair_kact = {
            pair: min(len(members[pair[1]]), o + 1)
            for pair, o in counts.items()
            if o >= 2
        }

    def _rebuild_wire(self) -> None:
        """(Re)pack every retained pair into the persistent wire buckets.

        The wire lives for the session: a pair's activation order never
        changes after admission, so its packed ``(a << shift) | b``
        word is written once here (or on admission) and only ever
        *tombstoned* on retirement — :meth:`_repercolate` then reuses
        the buckets as-is instead of re-encoding ~10^5 pairs per apply.
        Called at open, on restore, and when tombstones outnumber live
        pairs (compaction).
        """
        buckets: dict[int, array] = {}
        slots: dict[tuple[int, int], int] = {}
        get = buckets.get
        for (a, b), k_act in self._pair_kact.items():
            arr = get(k_act)
            if arr is None:
                arr = buckets[k_act] = array("q")
            slots[(a, b)] = len(arr)
            arr.append((a << _WIRE_SHIFT) | b)
        self._wire = buckets
        self._slots = slots
        self._wire_garbage = 0

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def n_cliques(self) -> int:
        """Number of live maximal cliques (size >= 2)."""
        return len(self._members)

    @property
    def n_overlap_pairs(self) -> int:
        """Number of retained (counted, overlap >= 2) clique pairs."""
        return len(self._pair_kact)

    @property
    def max_clique_size(self) -> int:
        """Size of the largest live clique (0 when the graph has no edge)."""
        return max(map(len, self._members.values()), default=0)

    @property
    def applied_batches(self) -> int:
        """How many deltas this session has applied."""
        return self._applied

    @property
    def hierarchy(self) -> CommunityHierarchy | None:
        """The current community hierarchy (None when no clique exists).

        Rebuilt lazily from the cached per-order groups after an
        ``apply``; always equal to what ``run_cpm`` would produce on
        the session's current graph.
        """
        if self._hierarchy is None and self._members:
            with self.tracer.span("incr.hierarchy"):
                groups_by_k = {k: self._groups[k] for k in sorted(self._groups)}
                self._hierarchy = build_hierarchy(
                    self._members, groups_by_k, tracer=self.tracer, metrics=None
                )
        return self._hierarchy

    def fingerprint(self) -> dict:
        """The current graph's fingerprint (nodes, edges, checksum)."""
        return graph_fingerprint(self.graph)

    def describe(self) -> dict:
        """A JSON-friendly status snapshot (the CLI's ``session status``)."""
        hierarchy = self.hierarchy
        return {
            "kernel": self.kernel,
            "fingerprint": self.fingerprint(),
            "n_cliques": self.n_cliques,
            "max_clique_size": self.max_clique_size,
            "n_overlap_pairs": self.n_overlap_pairs,
            "applied_batches": self.applied_batches,
            "orders": hierarchy.orders if hierarchy is not None else [],
            "total_communities": (
                hierarchy.total_communities if hierarchy is not None else 0
            ),
        }

    def result(self):
        """The current state as a :class:`~repro.api.CPMResult`.

        The hierarchy (and anything derived from it — trees, query
        artifacts) is byte-identical to a fresh ``run_cpm`` on the
        session's graph.  The stats block carries the session's live
        census; phase timings are zero (the work happened across
        ``apply`` calls, traced under ``incr.*`` spans instead).
        """
        from ..api import CPMResult
        from ..core.lightweight import CPMRunStats

        hierarchy = self.hierarchy
        if hierarchy is None:
            raise ValueError("graph has no clique of size >= 2; nothing to extract")
        histogram = dict(Counter(len(m) for m in self._members.values()))
        stats = CPMRunStats(
            n_cliques=self.n_cliques,
            max_clique_size=self.max_clique_size,
            n_overlap_pairs=self.n_overlap_pairs,
            kernel=self.kernel,
            cache_hit=self.cache_hit,
            size_histogram={k: histogram[k] for k in sorted(histogram)},
        )
        return CPMResult(hierarchy=hierarchy, stats=stats, csr=None)

    # ------------------------------------------------------------------
    # Delta application
    # ------------------------------------------------------------------
    def apply(self, delta: EdgeDelta) -> CPMUpdate:
        """Apply one batch of edge changes; report what moved.

        Deletions are processed before insertions.  The whole batch is
        validated against the current graph first (every deletion
        present, every insertion absent), so an inapplicable batch
        raises ``ValueError`` without touching any state.  Returns a
        :class:`~.delta.CPMUpdate` with the per-order community
        changes between the covers before and after the batch.
        """
        if not isinstance(delta, EdgeDelta):
            raise TypeError(f"apply() takes an EdgeDelta, got {type(delta).__name__}")
        for u, v in delta.deletions:
            if not self.graph.has_edge(u, v):
                raise ValueError(
                    f"cannot delete edge ({u!r}, {v!r}): not present in the session graph"
                )
        for u, v in delta.insertions:
            if self.graph.has_edge(u, v):
                raise ValueError(
                    f"cannot insert edge ({u!r}, {v!r}): already present in the session graph"
                )
        with self.tracer.span(
            "incr.apply",
            batch=self._applied,
            insertions=len(delta.insertions),
            deletions=len(delta.deletions),
        ) as span:
            old_covers = self._covers_cache
            if old_covers is None:
                old_covers = self._covers_snapshot()
            old_max = self.max_clique_size
            born = retired = 0
            k_aff = 0
            with self.tracer.span("incr.mutate"):
                for u, v in delta.deletions:
                    b, r, k_edge = self._delete_edge(u, v)
                    born += b
                    retired += r
                    k_aff = max(k_aff, k_edge)
                for u, v in delta.insertions:
                    b, r, k_edge = self._insert_edge(u, v)
                    born += b
                    retired += r
                    k_aff = max(k_aff, k_edge)
            if self._wire_garbage > max(4096, len(self._pair_kact)):
                self._rebuild_wire()
            new_max = self.max_clique_size
            diff_top = min(k_aff, max(old_max, new_max))
            affected = tuple(range(2, diff_top + 1))
            recompute = range(2, min(k_aff, new_max) + 1)
            with self.tracer.span("incr.percolate", orders=len(recompute)):
                self._repercolate(recompute, new_max)
            self._hierarchy = None
            with self.tracer.span("incr.diff") as diff_span:
                new_covers = self._covers_snapshot()
                self._covers_cache = new_covers
                changes: list = []
                for k in affected:
                    changes.extend(
                        diff_covers(k, old_covers.get(k, ()), new_covers.get(k, ()))
                    )
                diff_span.set("changes", len(changes))
            update = CPMUpdate(
                batch=self._applied,
                inserted_edges=len(delta.insertions),
                deleted_edges=len(delta.deletions),
                cliques_born=born,
                cliques_retired=retired,
                affected_orders=affected,
                changes=tuple(changes),
            )
            self._applied += 1
            span.set("cliques_born", born)
            span.set("cliques_retired", retired)
            span.set("changes", len(update.changes))
        metrics = self.metrics
        metrics.inc("incr.batches")
        metrics.inc("incr.edges_inserted", len(delta.insertions))
        metrics.inc("incr.edges_deleted", len(delta.deletions))
        metrics.inc("incr.cliques_born", born)
        metrics.inc("incr.cliques_retired", retired)
        metrics.inc("incr.orders_repercolated", len(affected))
        metrics.inc("incr.community_changes", len(update.changes))
        _LOG.info(
            "incr.apply",
            batch=update.batch,
            insertions=len(delta.insertions),
            deletions=len(delta.deletions),
            cliques_born=born,
            cliques_retired=retired,
            changes=len(update.changes),
        )
        return update

    def _covers_snapshot(self) -> dict[int, tuple[frozenset, ...]]:
        """Member sets per order, in canonical cover order."""
        hierarchy = self.hierarchy
        if hierarchy is None:
            return {}
        return {
            k: tuple(c.members for c in hierarchy[k]) for k in hierarchy
        }

    def _insert_edge(self, u: Hashable, v: Hashable) -> tuple[int, int, int]:
        """Insert one edge; returns (born, retired, max affected size)."""
        self.graph.add_edge(u, v)
        nu = self.graph.neighbors(u)
        nv = self.graph.neighbors(v)
        members = self._members
        covered = [cid for cid in self._index.get(u, ()) if members[cid] <= nv]
        covered += [cid for cid in self._index.get(v, ()) if members[cid] <= nu]
        k_aff = 2
        for cid in covered:
            k_aff = max(k_aff, len(members[cid]))
            self._retire(cid)
        common = nu & nv
        if common:
            born = [
                clique | {u, v}
                for clique in local_maximal_cliques(self.graph, common, kernel=self.kernel)
            ]
        else:
            born = [frozenset((u, v))]
        for clique in born:
            k_aff = max(k_aff, len(clique))
            self._admit(clique)
        return len(born), len(covered), k_aff

    def _delete_edge(self, u: Hashable, v: Hashable) -> tuple[int, int, int]:
        """Delete one edge; returns (born, retired, max affected size)."""
        self.graph.remove_edge(u, v)
        members = self._members
        covering = [cid for cid in self._index.get(u, ()) if v in members[cid]]
        candidates: list[frozenset] = []
        k_aff = 0
        for cid in covering:
            clique = members[cid]
            k_aff = max(k_aff, len(clique))
            candidates.append(clique - {u})
            candidates.append(clique - {v})
            self._retire(cid)
        born = 0
        neighbors = self.graph.neighbors
        for candidate in candidates:
            if len(candidate) < 2:
                continue
            nodes = iter(candidate)
            common = set(neighbors(next(nodes)))
            for node in nodes:
                common &= neighbors(node)
                if not common:
                    break
            if common:
                continue  # covered by a surviving maximal clique
            self._admit(candidate)
            born += 1
        return born, len(covering), k_aff

    def _admit(self, clique: frozenset) -> int:
        """Register a new maximal clique and count its overlaps.

        Overlap counts come from one pass over the node index (the
        co-occurrence count with each live clique *is* the overlap);
        only counts >= 2 are retained, with the pair's activation
        order fixed immediately — both cliques are immutable, so
        ``k_act = min(o + 1, |A|, |B|)`` never changes afterwards.
        2-cliques skip counting entirely: maximal cliques cannot nest,
        so their overlaps never reach 2.
        """
        cid = self._next_id
        self._next_id += 1
        members = self._members
        members[cid] = clique
        size = len(clique)
        if size >= 3:
            counts: Counter[int] = Counter()
            for node in clique:
                bucket = self._index.setdefault(node, set())
                counts.update(bucket)
                bucket.add(cid)
            pair_kact = self._pair_kact
            wire = self._wire
            slots = self._slots
            for other, overlap in counts.items():
                if overlap >= 2:
                    k_act = min(overlap + 1, size, len(members[other]))
                    pair_kact[(other, cid)] = k_act
                    arr = wire.get(k_act)
                    if arr is None:
                        arr = wire[k_act] = array("q")
                    slots[(other, cid)] = len(arr)
                    arr.append((other << _WIRE_SHIFT) | cid)
        else:
            for node in clique:
                self._index.setdefault(node, set()).add(cid)
        return cid

    def _retire(self, cid: int) -> frozenset:
        """Remove a clique from the members, index and pair state."""
        clique = self._members.pop(cid)
        cohabitants: set[int] = set()
        index = self._index
        for node in clique:
            bucket = index[node]
            bucket.discard(cid)
            cohabitants |= bucket
            if not bucket:
                del index[node]
        pair_kact = self._pair_kact
        slots = self._slots
        wire = self._wire
        for other in cohabitants:
            key = (other, cid) if other < cid else (cid, other)
            k_act = pair_kact.pop(key, None)
            if k_act is not None:
                # Tombstone the pair's wire word in place: 0 decodes as
                # the self-pair (0, 0), which every sweep unions as a
                # no-op.  Compaction reclaims the slots once tombstones
                # outnumber live pairs.
                wire[k_act][slots.pop(key)] = 0
                self._wire_garbage += 1
        return clique

    def _repercolate(self, orders, new_max: int) -> None:
        """Re-sweep the affected union-find orders from the pair state.

        Cached groups for orders above the affected range stay valid
        (their cliques and qualifying pairs were untouched); orders
        above the new maximum clique size are dropped.  The persistent
        wire buckets are reused as-is — stable ids are the union-find
        positions, so no per-apply remapping or re-packing of the
        ~10^5 retained pairs happens; only the order-2 chains (which
        depend on the mutable node index) are rebuilt.  The sweep is
        the same descending :func:`~repro.core.percolation.sweep_wire`
        the batch pipeline uses, with explicit per-order eligible-id
        lists instead of prefix counts (stable ids are not
        size-sorted).
        """
        for k in [k for k in self._groups if k > new_max]:
            del self._groups[k]
        orders = sorted(orders, reverse=True)
        if not orders or not self._members:
            return
        members = self._members
        ids = sorted(members, key=lambda c: (-len(members[c]), c))
        sizes = [len(members[c]) for c in ids]
        shift = _WIRE_SHIFT
        chains = array("q")
        append = chains.append
        for bucket in self._index.values():
            if len(bucket) < 2:
                continue
            cids = sorted(bucket)
            prev = cids[0]
            for cur in cids[1:]:
                append((prev << shift) | cur)
                prev = cur
        wire = OverlapWire(
            n_cliques=self._next_id,
            shift=shift,
            n_pairs=len(self._pair_kact),
            n_chain_pairs=len(chains),
            buckets={
                k_act: arr.tobytes() for k_act, arr in self._wire.items() if arr
            },
            chains=chains.tobytes(),
        )
        eligibles = [ids[: _prefix_ge(sizes, k)] for k in orders]
        if self.kernel == "blocks":
            # The vectorised sweep twin: identical descending-bucket
            # contract and group ordering (parity-fuzzed against
            # sweep_wire in tests/test_incremental.py), min-label
            # propagation instead of union-find.
            from ..core.blocks import percolate_orders_blocks

            groups_by_order, _stats = percolate_orders_blocks(orders, eligibles, wire)
        else:
            groups_by_order, _merges, _applied = sweep_wire(orders, eligibles, wire)
        for k, groups in groups_by_order.items():
            self._groups[k] = [sorted(group) for group in groups]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | PathLike | CheckpointStore) -> Path:
        """Persist the session into a checkpoint directory.

        Writes the full incremental state (graph, cliques, retained
        pair activations, cached groups) as the store's ``session``
        phase, with ``META.json`` keyed by the *current* graph
        fingerprint — :func:`load_session` re-verifies it, so a
        directory can never silently resurrect a different graph's
        state.  Any pipeline checkpoint previously in the directory is
        cleared (the two layouts are mutually exclusive).
        """
        store = path if isinstance(path, CheckpointStore) else CheckpointStore(path)
        with self.tracer.span("incr.save") as span:
            checksum = graph_fingerprint(self.graph)["checksum"]
            store.open(
                checksum=checksum, kernel=f"{_KERNEL_TAG}{self.kernel}", resume=False
            )
            payload = {
                "schema": SESSION_SCHEMA_VERSION,
                "kernel": self.kernel,
                "nodes": list(self.graph.nodes()),
                "edges": list(self.graph.edges()),
                "members": self._members,
                "pair_kact": self._pair_kact,
                "groups": self._groups,
                "next_id": self._next_id,
                "applied": self._applied,
            }
            target = store.store_phase("session", payload)
            span.set("bytes", target.stat().st_size)
        self.metrics.inc("incr.sessions_saved")
        return target

    @classmethod
    def _restore(
        cls,
        payload: dict,
        graph: Graph,
        *,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> "CPMSession":
        """Rebuild a session from a persisted payload (no recompute)."""
        session = cls.__new__(cls)
        session.kernel = payload["kernel"]
        session.tracer = tracer if tracer is not None else NULL_TRACER
        session.metrics = metrics if metrics is not None else MetricsRegistry()
        session.graph = graph
        session._members = dict(payload["members"])
        session._pair_kact = dict(payload["pair_kact"])
        session._groups = {k: list(v) for k, v in payload["groups"].items()}
        session._next_id = payload["next_id"]
        session._applied = payload["applied"]
        session._hierarchy = None
        session._covers_cache = None
        session.cache_hit = False
        session.open_seconds = 0.0
        session._index = {}
        for cid, clique in session._members.items():
            for node in clique:
                session._index.setdefault(node, set()).add(cid)
        session._rebuild_wire()
        session.metrics.inc("incr.sessions_loaded")
        return session


def load_session(
    path: str | PathLike,
    *,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> CPMSession:
    """Reopen a session persisted by :meth:`CPMSession.save`.

    Validates the directory end to end before trusting it: the META
    must be a session entry (not a pipeline checkpoint) at the current
    schema versions, the payload must deserialise, and the rebuilt
    graph's fingerprint must match the checksum the META was keyed
    with — any mismatch raises
    :class:`~repro.runner.checkpoint.CheckpointMismatchError` (a
    ``ValueError``, so the CLI maps it to a clean exit).
    """
    active_tracer = tracer if tracer is not None else NULL_TRACER
    with active_tracer.span("incr.load") as span:
        store = CheckpointStore(path)
        meta = store.meta()
        if meta is None:
            raise CheckpointError(
                f"no saved session at {store.root}: META.json is missing"
            )
        kernel_tag = str(meta.get("kernel", ""))
        if not kernel_tag.startswith(_KERNEL_TAG):
            raise CheckpointMismatchError(
                f"{store.root} holds a pipeline checkpoint (kernel={kernel_tag!r}), "
                "not a saved session"
            )
        payload = store.load_phase("session")
        if payload is None:
            raise CheckpointError(
                f"saved session at {store.root} has no readable session payload"
            )
        if payload.get("schema") != SESSION_SCHEMA_VERSION:
            raise CheckpointMismatchError(
                f"saved session at {store.root} uses schema {payload.get('schema')!r}, "
                f"this build expects {SESSION_SCHEMA_VERSION}"
            )
        graph = Graph()
        graph.add_nodes_from(payload["nodes"])
        graph.add_edges_from(payload["edges"])
        checksum = graph_fingerprint(graph)["checksum"]
        if checksum != meta.get("checksum"):
            raise CheckpointMismatchError(
                f"saved session at {store.root} fails its integrity check: stored "
                f"checksum {meta.get('checksum')!r} != rebuilt graph {checksum!r}"
            )
        span.set("n_cliques", len(payload["members"]))
    return CPMSession._restore(payload, graph, tracer=tracer, metrics=metrics)
