"""Measurement-source simulators (Section 2.1 substitution).

The paper's Topology dataset merges three measurement collections —
the CAIDA IPv4 Routed /24 AS Links dataset [15], DIMES [1] and the UCLA
IRL Internet Topology Collection [2] — each of which observes a biased
subset of the true AS-level topology plus some spurious links.  With
the original collections unavailable offline, this module simulates the
*observation process*: a :class:`MeasurementSource` samples the edges a
vantage-point campaign would see from a ground-truth graph.

The observation model is path-based, like the underlying traceroute/BGP
collection: each vantage point discovers the edges on shortest paths
toward a sample of destinations.  High-degree core links appear on many
paths (observed by every source); peripheral links are seen only by
sources with a nearby vantage point — reproducing the
coverage-disagreement between collections that makes merging worthwhile
(the motivation of [10]).  A small rate of *spurious* edges (false AS
adjacencies from aliasing/IXP artifacts) is injected per source and
tagged, so the cleaning stage of :mod:`repro.topology.merge` has real
work to do and can be validated against ground truth.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field

from ..graph.undirected import Graph

__all__ = ["ObservedDataset", "MeasurementSource", "default_sources", "observe_all"]


@dataclass
class ObservedDataset:
    """The output of one measurement campaign."""

    source_name: str
    edges: set[frozenset]
    #: Edges injected by the noise model (absent from the ground truth).
    #: Carried for validation only — the merge pipeline must not peek.
    spurious: set[frozenset] = field(default_factory=set)

    @property
    def n_edges(self) -> int:
        return len(self.edges)

    def as_graph(self) -> Graph:
        """The observed edges as a Graph."""
        graph = Graph()
        for edge in self.edges:
            u, v = tuple(edge)
            graph.add_edge(u, v)
        return graph


@dataclass(frozen=True)
class MeasurementSource:
    """One vantage-point campaign definition.

    ``n_vantage_points`` BGP/traceroute monitors, each tracing towards
    ``destinations_per_vp`` random destination ASes; ``spurious_rate``
    false adjacencies are added per thousand observed edges.

    ``core_biased`` places vantage points proportionally to degree —
    the reality of BGP collectors (Route Views / RIPE RIS peers are
    large carriers), and the reason merged datasets cover the dense
    core: same-depth peering edges (IXP meshes, the Tier-1 clique) lie
    on *no* shortest-path tree from a distant monitor, so they are only
    seen as the first-hop adjacency of a monitor hosted at a core AS.
    Each vantage point therefore also contributes its full neighbor
    set (its BGP session list).  ``core_biased=False`` models
    host-based agent swarms (DIMES-style), which systematically miss
    the core mesh — the measurement bias that motivates merging.
    """

    name: str
    n_vantage_points: int
    destinations_per_vp: int
    spurious_rate_per_mille: float = 2.0
    core_biased: bool = True

    def observe(self, truth: Graph, rng: random.Random) -> ObservedDataset:
        """Run the campaign against the ground-truth topology."""
        nodes = sorted(truth.nodes())
        if not nodes:
            return ObservedDataset(self.name, set())
        observed: set[frozenset] = set()
        vantage_points = self._place_vantage_points(truth, nodes, rng)
        for vp in vantage_points:
            # The monitor's own BGP sessions are all visible.
            for neighbor in truth.neighbors(vp):
                observed.add(frozenset((vp, neighbor)))
            destinations = rng.sample(nodes, min(self.destinations_per_vp, len(nodes)))
            observed |= _edges_on_shortest_paths(truth, vp, set(destinations))
        spurious: set[frozenset] = set()
        n_spurious = int(len(observed) * self.spurious_rate_per_mille / 1000.0)
        attempts = 0
        while len(spurious) < n_spurious and attempts < n_spurious * 50:
            attempts += 1
            u, v = rng.sample(nodes, 2)
            edge = frozenset((u, v))
            if not truth.has_edge(u, v) and edge not in spurious:
                spurious.add(edge)
        return ObservedDataset(self.name, observed | spurious, spurious)

    def _place_vantage_points(self, truth: Graph, nodes: list, rng: random.Random) -> list:
        count = min(self.n_vantage_points, len(nodes))
        if not self.core_biased:
            return rng.sample(nodes, count)
        # Core-biased collectors mirror Route Views / RIPE RIS: half the
        # monitors sit at the largest carriers outright (collectors are
        # hosted at the major IXPs and peer with the top networks), the
        # rest land degree-weighted across the graph.
        by_degree = sorted(nodes, key=lambda n: (-truth.degree(n), n))
        pinned = by_degree[: count // 2]
        chosen = list(pinned)
        pool = [n for n in nodes if n not in set(pinned)]
        weights = [truth.degree(n) + 1 for n in pool]
        for _ in range(count - len(chosen)):
            if not pool:
                break
            pick = rng.choices(range(len(pool)), weights=weights)[0]
            chosen.append(pool.pop(pick))
            weights.pop(pick)
        return chosen


def _edges_on_shortest_paths(graph: Graph, source, destinations: set) -> set[frozenset]:
    """Edges on one BFS shortest-path tree from ``source`` to ``destinations``.

    A single parent per node models the best-path selection of BGP: the
    campaign sees *a* shortest path per destination, not all of them.
    """
    parent: dict = {source: None}
    queue = deque([source])
    remaining = set(destinations) - {source}
    while queue and remaining:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor not in parent:
                parent[neighbor] = node
                remaining.discard(neighbor)
                queue.append(neighbor)
    edges: set[frozenset] = set()
    for dest in destinations:
        cursor = dest
        while cursor in parent and parent[cursor] is not None:
            edges.add(frozenset((cursor, parent[cursor])))
            cursor = parent[cursor]
    return edges


def default_sources() -> list[MeasurementSource]:
    """The three campaign profiles mirroring [15], [1] and [2].

    The profiles differ in vantage-point count and per-VP reach, like
    the real collections: CAIDA-like (few dedicated monitors, broad
    destination sweep), DIMES-like (many light agents), IRL-like
    (BGP-table-driven, widest edge coverage per VP).
    """
    return [
        MeasurementSource("ipv4-routed-24-links", n_vantage_points=12, destinations_per_vp=900),
        MeasurementSource(
            "dimes", n_vantage_points=60, destinations_per_vp=150, core_biased=False
        ),
        MeasurementSource("irl-topology", n_vantage_points=25, destinations_per_vp=500),
    ]


def observe_all(
    truth: Graph,
    sources: list[MeasurementSource] | None = None,
    *,
    seed: int = 0,
) -> list[ObservedDataset]:
    """Run every campaign (each with an independent, seed-derived RNG)."""
    campaigns = sources if sources is not None else default_sources()
    # String-keyed seeding is stable across processes (tuple hashes of
    # strings are randomised per interpreter by PYTHONHASHSEED).
    return [
        source.observe(truth, random.Random(f"{seed}:{source.name}"))
        for source in campaigns
    ]
