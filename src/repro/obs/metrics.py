"""Named counters, gauges and histograms for CPM runs *and* live serving.

A :class:`MetricsRegistry` is a flat namespace of instruments:

* :class:`Counter` — monotonically increasing totals (cliques
  enumerated, overlap pair updates, union-find merges, HTTP requests);
* :class:`Gauge` — last-value-wins observations (worker utilisation,
  eligible cliques at the minimum order, process RSS);
* :class:`Histogram` — quantile summaries over repeated observations
  (per-shard wall times, per-endpoint request latencies), keeping the
  exact count/sum/min/max plus *log-bucketed* counts so p50/p90/p99
  are answerable without retaining raw samples — a registry stays
  O(instruments + occupied buckets) regardless of run length.

Thread safety: every instrument guards its mutation with its own tiny
lock, and the registry guards instrument *creation* (plus snapshot /
merge) with one registry lock — fine-grained, so two handler threads
bumping different counters never contend, and two bumping the *same*
counter serialise only for the duration of one integer add.  This is
what lets ``repro query serve`` answer requests concurrently instead
of serialising every request behind a global lock just to keep the
telemetry coherent.

Histograms use logarithmic buckets (growth factor ``2**0.25``, i.e.
~19% wide): an observation ``v > 0`` lands in the bucket whose upper
bound is the smallest power ``growth**i >= v``, so a reported quantile
is off by at most half a bucket (< 10% relative error) while exact
count/sum/min/max are preserved alongside.  Buckets are sparse dicts
and **mergeable**: :meth:`MetricsRegistry.merge` folds bucket counts
across worker processes or handler threads exactly, so a merged p99
is the p99 of the union of observations (to bucket resolution).

Registries are cheap plain-Python objects; worker processes report raw
dicts back to the parent, which folds them in with :meth:`
MetricsRegistry.merge`.  Canonical metric names are documented in
``docs/observability.md``; the resilient runner adds its own
``runner.*`` family (``docs/robustness.md``), and the query server's
``query.request_seconds{endpoint="..."}`` family uses the inline-label
naming convention understood by :mod:`repro.obs.exposition`.
"""

from __future__ import annotations

import json
import math
import threading
from pathlib import Path

__all__ = [
    "AtomicCounter",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "BUCKET_GROWTH",
]

#: Growth factor between consecutive histogram bucket bounds.  With
#: ``2**0.25`` four buckets cover one octave, bounding the relative
#: error of a bucketed quantile below ~9.5% (half a bucket width).
BUCKET_GROWTH = 2.0 ** 0.25

#: Precomputed ``log(BUCKET_GROWTH)`` for the bucket-index computation.
_LOG_GROWTH = math.log(BUCKET_GROWTH)


class AtomicCounter:
    """A lock-guarded integer counter with an atomic increment-and-get.

    CPython's GIL does not make ``x += 1`` atomic (it is a read, an
    add and a write that another thread can interleave), so shared
    tallies — the query server's ``max_requests`` drain, request-id
    assignment — go through this instead.  ``next()`` returns the
    *post*-increment value, so exactly one caller observes any given
    total: the thread whose ``next()`` returns ``max_requests`` owns
    the shutdown.
    """

    __slots__ = ("_lock", "_value")

    def __init__(self, start: int = 0) -> None:
        self._lock = threading.Lock()
        self._value = start

    def next(self, amount: int = 1) -> int:
        """Atomically add ``amount`` and return the new value."""
        with self._lock:
            self._value += amount
            return self._value

    @property
    def value(self) -> int:
        """The current value (a snapshot; may be stale immediately)."""
        with self._lock:
            return self._value


class Counter:
    """A monotonically increasing integer total (thread-safe)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        with self._lock:
            self.value += amount

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A last-value-wins observation (thread-safe)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Record the current value, replacing the previous one."""
        with self._lock:
            self.value = value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


def bucket_index(value: float) -> int:
    """The log-bucket index of a positive observation.

    Bucket ``i`` covers ``(growth**(i-1), growth**i]``; values land in
    the smallest bucket whose upper bound is >= the value, so bucket
    bounds are exact upper bounds (the Prometheus ``le`` convention).
    """
    # round() guards the exact-power case: log(growth**i)/log(growth)
    # can float to i - 1e-16, which ceil would misplace one bucket up.
    raw = math.log(value) / _LOG_GROWTH
    nearest = round(raw)
    if math.isclose(raw, nearest, rel_tol=0.0, abs_tol=1e-9):
        return nearest
    return math.ceil(raw)


def bucket_upper(index: int) -> float:
    """The (exclusive-below, inclusive-above) upper bound of bucket ``index``."""
    return BUCKET_GROWTH ** index


class Histogram:
    """Streaming quantile summary over log-spaced buckets (thread-safe).

    Exact ``count`` / ``sum`` / ``min`` / ``max`` are kept alongside a
    sparse dict of log-bucket counts; quantiles interpolate within the
    resolved bucket (geometric midpoint) and clamp to the observed
    ``[min, max]``, so small-sample quantiles are never outside the
    data.  Non-positive observations (a zero-duration span rounds to
    0.0) count in a dedicated ``zeros`` bin at value 0.0.

    Two histograms merge losslessly at bucket resolution: counts,
    sums and bucket tallies add; min/max extremise — the algebra
    ``tests/test_exposition.py`` pins down.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets", "zeros", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        #: Sparse log-bucket counts: bucket index -> observations.
        self.buckets: dict[int, int] = {}
        #: Observations <= 0 (counted at value 0.0).
        self.zeros = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Fold one observation into the summary."""
        with self._lock:
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            if value > 0.0:
                index = bucket_index(value)
                self.buckets[index] = self.buckets.get(index, 0) + 1
            else:
                self.zeros += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float | None:
        """The q-quantile (0 < q <= 1) to bucket resolution; None when empty.

        Resolution: the observation of rank ``ceil(q * count)`` is
        located in the ordered bucket sequence; the reported value is
        that bucket's geometric midpoint, clamped to the exact
        ``[min, max]`` — so p100 is exactly ``max``, and a one-sample
        histogram reports that sample for every quantile.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        with self._lock:
            return self._quantile_locked(q)

    def _quantile_locked(self, q: float) -> float | None:
        if self.count == 0:
            return None
        rank = max(1, math.ceil(q * self.count))
        if rank >= self.count:
            # The rank lands on the largest observation, which is
            # tracked exactly: p100 is always the true max, and high
            # quantiles of small histograms are exact too.
            return self.max
        if rank <= self.zeros:
            return max(0.0, self.min if self.min is not None else 0.0)
        seen = self.zeros
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                midpoint = BUCKET_GROWTH ** (index - 0.5)
                low = self.min if self.min is not None else midpoint
                high = self.max if self.max is not None else midpoint
                return min(max(midpoint, low), high)
        # Rank beyond the recorded buckets (possible only on summaries
        # merged from a pre-bucket payload): fall back to the maximum.
        return self.max

    def summary(self) -> dict:
        """The summary as a plain dict (exact scalars + quantiles + buckets).

        The ``buckets`` keys are strings (the dict crosses JSON
        boundaries in worker envelopes and manifests); ``p50`` /
        ``p90`` / ``p99`` ride along precomputed so manifest readers
        need no bucket arithmetic.
        """
        with self._lock:
            return {
                "count": self.count,
                "sum": self.total,
                "min": self.min,
                "max": self.max,
                "mean": self.total / self.count if self.count else 0.0,
                "p50": self._quantile_locked(0.50),
                "p90": self._quantile_locked(0.90),
                "p99": self._quantile_locked(0.99),
                "zeros": self.zeros,
                "buckets": {str(index): n for index, n in sorted(self.buckets.items())},
            }

    def merge_summary(self, summary: dict) -> None:
        """Fold another histogram's :meth:`summary` dict into this one.

        Exact under bucket algebra: counts/sums/bucket tallies add,
        min/max extremise.  Payloads from the pre-bucket summary shape
        (no ``buckets`` key) still merge their exact scalars.
        """
        with self._lock:
            self.count += summary.get("count", 0)
            self.total += summary.get("sum", 0.0)
            self.zeros += summary.get("zeros", 0)
            for bound, pick in (("min", min), ("max", max)):
                incoming = summary.get(bound)
                if incoming is not None:
                    current = getattr(self, bound)
                    setattr(self, bound, incoming if current is None else pick(current, incoming))
            for key, n in (summary.get("buckets") or {}).items():
                index = int(key)
                self.buckets[index] = self.buckets.get(index, 0) + n

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count}, mean={self.mean:.6g})"


class MetricsRegistry:
    """Get-or-create namespace of counters, gauges and histograms.

    Safe for concurrent writers: instrument creation is guarded by the
    registry lock (double-checked, so the hot path is one dict read)
    and every instrument locks its own mutation — see the module
    docstring for why this replaced the query server's global request
    lock.

    >>> metrics = MetricsRegistry()
    >>> metrics.inc("cliques.enumerated", 3)
    >>> metrics.observe("overlap.shard_seconds", 0.5)
    >>> metrics.counter("cliques.enumerated").value
    3
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Instruments
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter named ``name``, created at 0 on first use."""
        instrument = self._counters.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._counters.get(name)
                if instrument is None:
                    instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name``, created at 0.0 on first use."""
        instrument = self._gauges.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._gauges.get(name)
                if instrument is None:
                    instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        """The histogram named ``name``, created empty on first use."""
        instrument = self._histograms.get(name)
        if instrument is None:
            with self._lock:
                instrument = self._histograms.get(name)
                if instrument is None:
                    instrument = self._histograms[name] = Histogram(name)
        return instrument

    # ------------------------------------------------------------------
    # Convenience forms
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value``."""
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into histogram ``name``."""
        self.histogram(name).observe(value)

    # ------------------------------------------------------------------
    # Export / merge
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """All instruments as one JSON-serialisable dict."""
        with self._lock:
            counters = list(self._counters.items())
            gauges = list(self._gauges.items())
            histograms = list(self._histograms.items())
        return {
            "counters": {name: c.value for name, c in sorted(counters)},
            "gauges": {name: g.value for name, g in sorted(gauges)},
            "histograms": {name: h.summary() for name, h in sorted(histograms)},
        }

    def merge(self, payload: "MetricsRegistry | dict") -> None:
        """Fold another registry (or its ``to_dict`` form) into this one.

        Counters add, gauges take the incoming value, histogram
        summaries combine exactly (count/sum/buckets add, min/max
        extremise) — the operation used to aggregate worker-process
        reports and per-request handler captures.
        """
        data = payload.to_dict() if isinstance(payload, MetricsRegistry) else payload
        for name, value in data.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in data.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, summary in data.get("histograms", {}).items():
            self.histogram(name).merge_summary(summary)

    def write_json(self, path) -> Path:
        """Write :meth:`to_dict` as pretty-printed JSON; returns the path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8")
        return target

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, histograms={len(self._histograms)})"
        )
