"""Counterfactual topology edits: what-if analysis.

The paper's interpretation invites planning questions the library can
now answer mechanically: *what if country X opened an IXP?*  or *what
if an IXP lost its fabric?*  These helpers apply the counterfactual to
a dataset copy (the original is never touched) and return the modified
bundle ready for re-extraction; diffing the two hierarchies with
:mod:`repro.compare` quantifies the community-level effect.

Both edits keep the side datasets consistent: a new IXP registers its
participants; a removed fabric keeps the registry entry (membership is
a contract, the mesh is infrastructure) so tag analyses remain
comparable across the counterfactual.
"""

from __future__ import annotations

import dataclasses
import random

from ..graph.undirected import Graph
from .dataset import ASDataset
from .ixp import IXP

__all__ = ["add_ixp", "remove_ixp_fabric"]


def add_ixp(
    dataset: ASDataset,
    *,
    name: str,
    country: str,
    n_members: int,
    seed: int = 0,
) -> ASDataset:
    """A copy of ``dataset`` where ``country`` opens a new IXP.

    ``n_members`` ASes with a presence in the country (preferring the
    best-connected ones, as real IXPs bootstrap from the local
    providers) are meshed and registered as participants.  Raises when
    the country has fewer than two eligible ASes or the name is taken.
    """
    if name in dataset.ixps:
        raise ValueError(f"IXP {name!r} already exists")
    candidates = sorted(
        (a for a in dataset.geography.ases_in_country(country) if a in dataset.graph),
        key=lambda a: (-dataset.graph.degree(a), a),
    )
    if len(candidates) < 2:
        raise ValueError(f"country {country!r} has fewer than two ASes to mesh")
    rng = random.Random(f"{seed}:{name}")
    n_members = min(n_members, len(candidates))
    # Half the membership is the local top; the rest sampled.
    anchor_count = max(2, n_members // 2)
    members = candidates[:anchor_count]
    pool = [a for a in candidates[anchor_count:]]
    while len(members) < n_members and pool:
        members.append(pool.pop(rng.randrange(len(pool))))

    graph = dataset.graph.copy()
    for i, u in enumerate(members):
        for v in members[i + 1 :]:
            if not graph.has_edge(u, v):
                graph.add_edge(u, v)
    ixps = _copy_registry(dataset)
    ixps.add(IXP(name=name, country=country, participants=frozenset(members)))
    return dataclasses.replace(dataset, graph=graph, ixps=ixps)


def remove_ixp_fabric(dataset: ASDataset, name: str) -> ASDataset:
    """A copy of ``dataset`` where the named IXP's peering mesh is gone.

    Every edge between two of the IXP's participants is removed —
    the infrastructure-failure counterfactual.  The registry entry
    stays (the ASes are still members; there is just nothing to peer
    over), so on-IXP tags are unchanged and the community-level diff
    isolates the *topological* role of the fabric.
    """
    participants = set(dataset.ixps[name].participants)
    graph = Graph()
    graph.add_nodes_from(dataset.graph.nodes())
    for u, v in dataset.graph.edges():
        if u in participants and v in participants:
            continue
        graph.add_edge(u, v)
    return dataclasses.replace(dataset, graph=graph)


def _copy_registry(dataset: ASDataset):
    from .ixp import IXPRegistry

    registry = IXPRegistry()
    for ixp in dataset.ixps:
        registry.add(ixp)
    return registry
