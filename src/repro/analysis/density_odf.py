"""Link density and average ODF — Figures 4.4(a) and 4.4(b).

The paper identifies three behaviours:

1. main communities with k in [2, 30]: long k-clique chains — low link
   density, and members keep most connections inside (low ODF);
2. main communities with size comparable to k (k in [31, 36]) and
   many parallel communities: clique-like topologies — high link
   density *and* high ODF (cohesive carrier sets with huge external
   customer cones);
3. small low-k parallel communities: few members, so a handful of
   links swings both metrics — high variance.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from .context import AnalysisContext

__all__ = ["DensityOdfPoint", "DensityOdfAnalysis"]


@dataclass(frozen=True)
class DensityOdfPoint:
    """One marker of Figures 4.4(a)/(b)."""

    k: int
    label: str
    size: int
    link_density: float
    average_odf: float
    is_main: bool


class DensityOdfAnalysis:
    """Both Figure 4.4 series over the whole hierarchy."""

    def __init__(self, context: AnalysisContext) -> None:
        self.context = context
        self.points = [
            DensityOdfPoint(
                k=row.k,
                label=row.label,
                size=row.size,
                link_density=row.link_density,
                average_odf=row.average_odf,
                is_main=row.is_main,
            )
            for row in context.metrics_rows()
        ]

    def main_density_series(self) -> list[tuple[int, float]]:
        """(k, link density) of the main chain, ascending k."""
        return sorted((p.k, p.link_density) for p in self.points if p.is_main)

    def main_odf_series(self) -> list[tuple[int, float]]:
        """(k, average ODF) of the main chain, ascending k."""
        return sorted((p.k, p.average_odf) for p in self.points if p.is_main)

    def parallel_density_points(self) -> list[tuple[int, float]]:
        """(k, link density) of every parallel community."""
        return sorted((p.k, p.link_density) for p in self.points if not p.is_main)

    def parallel_odf_points(self) -> list[tuple[int, float]]:
        """(k, average ODF) of every parallel community."""
        return sorted((p.k, p.average_odf) for p in self.points if not p.is_main)

    # ------------------------------------------------------------------
    # Headline shape checks
    # ------------------------------------------------------------------
    def main_density_low_then_high(self, *, split_fraction: float = 0.8) -> bool:
        """Main density is low over most orders and clique-like at the top.

        The split defaults to the top 20% of the k range (the paper's
        case 1 vs case 2 boundary at k ≈ 30 of 36).
        """
        series = self.main_density_series()
        if len(series) < 4:
            return False
        split_k = series[0][0] + split_fraction * (series[-1][0] - series[0][0])
        low_band = [d for k, d in series if k <= split_k]
        high_band = [d for k, d in series if k > split_k]
        if not low_band or not high_band:
            return False
        return statistics.mean(low_band) < statistics.mean(high_band)

    def clique_like_top(self, *, threshold: float = 0.9) -> bool:
        """The apex community has near-full-mesh density (case 2)."""
        series = self.main_density_series()
        return bool(series) and series[-1][1] >= threshold

    def main_odf_increases_to_crown(self) -> bool:
        """Main ODF at the top orders exceeds the low-k main ODF.

        Low-k main communities absorb most well-connected ASes (links
        stay internal); the crown is a small carrier set with huge
        external degree.
        """
        series = self.main_odf_series()
        if len(series) < 4:
            return False
        return series[-1][1] > series[1][1]

    def parallel_variability(self, *, k_max: int = 7) -> float:
        """Std-dev of link density across low-k parallel communities.

        The paper's case 3: small communities, very variable metrics.
        """
        values = [p.link_density for p in self.points if not p.is_main and p.k <= k_max]
        if len(values) < 2:
            return 0.0
        return statistics.stdev(values)
