"""CSV export of every figure's data series.

For users re-drawing the figures in their own plotting stack: one CSV
per figure, written into a directory, with a manifest listing what each
file contains.  Exposed on the CLI as ``python -m repro paper
--csv-dir out/``.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path

from .paper import PaperRun

__all__ = ["figure_csvs", "write_figure_csvs"]


def _csv_text(headers: list[str], rows: list[list]) -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(headers)
    writer.writerows(rows)
    return buffer.getvalue()


def figure_csvs(run: PaperRun) -> dict[str, str]:
    """Name -> CSV text for every figure/table series of the run."""
    census = run.census
    sizes = run.sizes
    density = run.density_odf
    overlap = run.overlap
    tags = run.dataset.tag_summary()

    out: dict[str, str] = {}
    out["table_2_1.csv"] = _csv_text(
        ["on_ixp", "not_on_ixp"], [[tags.ixp.on_ixp, tags.ixp.not_on_ixp]]
    )
    out["table_2_2.csv"] = _csv_text(
        ["national", "continental", "worldwide", "unknown"],
        [[tags.geo.national, tags.geo.continental, tags.geo.worldwide, tags.geo.unknown]],
    )
    out["figure_4_1.csv"] = _csv_text(
        ["k", "n_communities"], [[k, n] for k, n in census.series()]
    )
    out["figure_4_3.csv"] = _csv_text(
        ["k", "size", "role"],
        [[p.k, p.size, "main" if p.is_main else "parallel"] for p in sizes.points],
    )
    out["figure_4_4.csv"] = _csv_text(
        ["k", "label", "role", "link_density", "average_odf"],
        [
            [p.k, p.label, "main" if p.is_main else "parallel",
             f"{p.link_density:.6f}", f"{p.average_odf:.6f}"]
            for p in density.points
        ],
    )
    out["section_4_overlap.csv"] = _csv_text(
        ["k", "n_parallel", "mean_fraction_vs_main", "zero_overlap", "mean_fraction_par_par"],
        [
            [row.k, row.n_parallel, f"{row.mean_parallel_main_fraction:.6f}",
             row.zero_overlap_parallels,
             "" if row.mean_parallel_parallel_fraction is None
             else f"{row.mean_parallel_parallel_fraction:.6f}"]
            for row in overlap.rows
        ],
    )
    out["communities.csv"] = _csv_text(
        ["label", "k", "size", "is_main", "band"],
        [
            [c.label, c.k, c.size, run.context.tree.is_main(c), run.bands.band_of(c.k)]
            for c in run.context.hierarchy.all_communities()
        ],
    )
    return out


def write_figure_csvs(run: PaperRun, directory: str | Path) -> list[str]:
    """Write every CSV plus a manifest; returns the file names written."""
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    files = figure_csvs(run)
    for name, text in files.items():
        (target / name).write_text(text, encoding="utf-8")
    manifest = {
        "dataset": repr(run.dataset),
        "files": {
            "table_2_1.csv": "Table 2.1 tag counts",
            "table_2_2.csv": "Table 2.2 tag counts",
            "figure_4_1.csv": "community count per order k",
            "figure_4_3.csv": "community sizes (main/parallel) per k",
            "figure_4_4.csv": "link density and average ODF per community",
            "section_4_overlap.csv": "overlap fractions at equal k",
            "communities.csv": "every community with band and role",
        },
    }
    (target / "manifest.json").write_text(
        json.dumps(manifest, indent=2, sort_keys=True), encoding="utf-8"
    )
    return sorted([*files, "manifest.json"])
