"""Disjoint-set forest (union-find).

The percolation step of CPM is connected components over the k-clique
adjacency graph; union-find gives near-linear merging of clique
adjacencies without materialising that (potentially huge) graph.
Implements path halving and union by size.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

__all__ = ["UnionFind"]


class UnionFind:
    """Union-find over arbitrary hashable items.

    >>> uf = UnionFind()
    >>> uf.union('a', 'b')
    True
    >>> uf.union('b', 'c')
    True
    >>> uf.connected('a', 'c')
    True
    >>> uf.union('a', 'c')   # already merged
    False
    """

    __slots__ = ("_parent", "_size")

    def __init__(self, items: Iterable[Hashable] | None = None) -> None:
        self._parent: dict[Hashable, Hashable] = {}
        self._size: dict[Hashable, int] = {}
        if items is not None:
            for item in items:
                self.add(item)

    def add(self, item: Hashable) -> None:
        """Register ``item`` as a singleton set if unseen."""
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def __contains__(self, item: Hashable) -> bool:
        return item in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def find(self, item: Hashable) -> Hashable:
        """Representative of ``item``'s set (auto-registers unseen items)."""
        self.add(item)
        parent = self._parent
        root = item
        while parent[root] != root:
            parent[root] = parent[parent[root]]  # path halving
            root = parent[root]
        return root

    def union(self, a: Hashable, b: Hashable) -> bool:
        """Merge the sets of ``a`` and ``b``; True iff they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return True

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """True iff ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def set_size(self, item: Hashable) -> int:
        """Size of the set containing ``item``."""
        return self._size[self.find(item)]

    def groups(self) -> list[set[Hashable]]:
        """All disjoint sets, largest first."""
        by_root: dict[Hashable, set[Hashable]] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), set()).add(item)
        return sorted(by_root.values(), key=len, reverse=True)
