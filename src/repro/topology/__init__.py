"""Topology substrate: the AS-level graph, its side datasets (IXP and
geography), the synthetic Internet generator and the measurement
merge pipeline that stands in for the paper's data sources.
"""

from .configio import config_from_dict, config_to_dict, load_config, save_config
from .dataset import ASDataset
from .generator import (
    CrownBlockSpec,
    GeneratorConfig,
    InternetTopologyGenerator,
    MediumIXPSpec,
    SmallIXPSpec,
    generate_topology,
)
from .geography import COUNTRY_CONTINENT, Continent, GeoRegistry, GeoTag, continent_of
from .ixp import IXP, IXPRegistry, IXPShare
from .merge import MergePolicy, MergeReport, merge_observations
from .realdata import (
    parse_as_links,
    parse_as_relationships,
    read_as_links,
    read_as_relationships,
)
from .sources import MeasurementSource, ObservedDataset, default_sources, observe_all
from .tags import GeoTagSummary, IXPTagSummary, TagSummary, summarize_tags
from .whatif import add_ixp, remove_ixp_fabric

__all__ = [
    "ASDataset",
    "GeneratorConfig",
    "InternetTopologyGenerator",
    "generate_topology",
    "CrownBlockSpec",
    "MediumIXPSpec",
    "SmallIXPSpec",
    "GeoRegistry",
    "GeoTag",
    "Continent",
    "COUNTRY_CONTINENT",
    "continent_of",
    "IXP",
    "IXPRegistry",
    "IXPShare",
    "MergePolicy",
    "MergeReport",
    "merge_observations",
    "MeasurementSource",
    "ObservedDataset",
    "default_sources",
    "observe_all",
    "TagSummary",
    "IXPTagSummary",
    "GeoTagSummary",
    "summarize_tags",
    "parse_as_links",
    "read_as_links",
    "parse_as_relationships",
    "read_as_relationships",
    "config_to_dict",
    "config_from_dict",
    "save_config",
    "load_config",
    "add_ixp",
    "remove_ixp_fabric",
]
