"""Core decomposition and degeneracy ordering.

Two uses in this library:

* **k-core decomposition** is one of the partition-style baselines the
  paper contrasts with ([26] Seidman; used on the AS graph by [3], [6]).
  ``core_numbers`` implements the linear-time bucket algorithm of
  Batagelj & Zaveršnik.
* **Degeneracy ordering** drives the outer loop of Bron–Kerbosch
  maximal clique enumeration (``repro.core.cliques``), bounding the
  recursion width by the graph degeneracy — essential on the AS graph,
  whose dense IXP cores would otherwise blow up the search.
"""

from __future__ import annotations

from collections.abc import Hashable

from .undirected import Graph

__all__ = ["core_numbers", "degeneracy", "degeneracy_ordering", "k_core"]


def degeneracy_ordering(graph: Graph) -> list[Hashable]:
    """Nodes ordered by repeatedly removing a minimum-degree node.

    Returns the removal order.  Each node has at most ``degeneracy(G)``
    neighbors *later* in the order, the property Bron–Kerbosch exploits.
    """
    order, _ = _peel(graph)
    return order


def core_numbers(graph: Graph) -> dict[Hashable, int]:
    """Map each node to its core number (largest k with the node in the k-core)."""
    _, cores = _peel(graph)
    return cores


def degeneracy(graph: Graph) -> int:
    """The graph degeneracy: the maximum core number (0 for empty graphs)."""
    _, cores = _peel(graph)
    return max(cores.values(), default=0)


def k_core(graph: Graph, k: int) -> Graph:
    """The maximal induced subgraph with all degrees >= k.

    The k-core baseline: unlike k-clique communities this yields a
    single nested chain of subgraphs (a partition refinement), which is
    exactly the contrast drawn in Chapter 1 of the paper.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    cores = core_numbers(graph)
    return graph.subgraph(node for node, core in cores.items() if core >= k)


def _peel(graph: Graph) -> tuple[list[Hashable], dict[Hashable, int]]:
    """Bucket-based peeling: O(V + E) removal order plus core numbers."""
    degrees = graph.degrees()
    if not degrees:
        return [], {}
    max_degree = max(degrees.values())
    buckets: list[list[Hashable]] = [[] for _ in range(max_degree + 1)]
    for node, deg in degrees.items():
        buckets[deg].append(node)

    order: list[Hashable] = []
    cores: dict[Hashable, int] = {}
    removed: set[Hashable] = set()
    current_core = 0
    cursor = 0
    while len(order) < len(degrees):
        # Find the lowest non-empty bucket; `cursor` only needs to back
        # up by one per removal, keeping the scan amortised linear.
        while cursor <= max_degree and not buckets[cursor]:
            cursor += 1
        node = buckets[cursor].pop()
        if node in removed or degrees[node] != cursor:
            continue  # stale bucket entry
        removed.add(node)
        current_core = max(current_core, cursor)
        cores[node] = current_core
        order.append(node)
        for neighbor in graph.neighbors(node):
            if neighbor in removed:
                continue
            new_degree = degrees[neighbor] - 1
            degrees[neighbor] = new_degree
            buckets[new_degree].append(neighbor)
            if new_degree < cursor:
                cursor = new_degree
    return order, cores
