"""Unit tests for the community data model."""

import pytest

from repro.core import Community, CommunityCover, CommunityHierarchy
from repro.core.communities import member_sort_key


def _community(k: int, index: int, members) -> Community:
    return Community(k=k, index=index, members=frozenset(members))


class TestCommunity:
    def test_label_format(self):
        assert _community(34, 5, range(40)).label == "k34id5"

    def test_size_iteration_containment(self):
        c = _community(3, 0, [10, 20, 30])
        assert c.size == 3
        assert len(c) == 3
        assert 10 in c
        assert sorted(c) == [10, 20, 30]

    def test_rejects_k_below_2(self):
        with pytest.raises(ValueError):
            _community(1, 0, [1])

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError):
            _community(2, -1, [1, 2])

    def test_rejects_too_few_members(self):
        with pytest.raises(ValueError):
            _community(4, 0, [1, 2, 3])

    def test_overlap_and_fraction(self):
        a = _community(3, 0, [1, 2, 3, 4])
        b = _community(3, 1, [3, 4, 5])
        assert a.overlap(b) == 2
        assert a.overlap_fraction(b) == pytest.approx(2 / 3)

    def test_overlap_fraction_full_containment(self):
        a = _community(3, 0, [1, 2, 3, 4, 5])
        b = _community(3, 1, [1, 2, 3])
        assert a.overlap_fraction(b) == 1.0

    def test_contains_community(self):
        a = _community(3, 0, [1, 2, 3, 4])
        b = _community(4, 0, [1, 2, 3, 4])
        assert a.contains_community(b) and b.contains_community(a)
        c = _community(3, 1, [1, 2, 9])
        assert not a.contains_community(c)


class TestCommunityCover:
    def test_index_ordering_by_size_desc(self):
        cover = CommunityCover(3, [frozenset({1, 2, 3}), frozenset(range(10))])
        assert cover[0].size == 10
        assert cover[1].size == 3
        assert [c.index for c in cover] == [0, 1]

    def test_deterministic_tie_break(self):
        a = CommunityCover(3, [frozenset({1, 2, 3}), frozenset({4, 5, 6})])
        b = CommunityCover(3, [frozenset({4, 5, 6}), frozenset({1, 2, 3})])
        assert [sorted(c.members) for c in a] == [sorted(c.members) for c in b]

    def test_communities_of_overlapping_node(self):
        cover = CommunityCover(3, [frozenset({1, 2, 3, 4}), frozenset({4, 5, 6})])
        assert len(cover.communities_of(4)) == 2
        assert len(cover.communities_of(1)) == 1
        assert cover.communities_of(99) == []

    def test_nodes_union(self):
        cover = CommunityCover(3, [frozenset({1, 2, 3}), frozenset({3, 4, 5})])
        assert cover.nodes() == {1, 2, 3, 4, 5}

    def test_largest_of_empty_cover(self):
        assert CommunityCover(3, []).largest() is None

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            CommunityCover(1, [])


class TestSortKey:
    def test_size_dominates(self):
        assert member_sort_key(frozenset({1, 2, 3})) < member_sort_key(frozenset({4, 5}))

    def test_ties_by_members(self):
        assert member_sort_key(frozenset({1, 2})) < member_sort_key(frozenset({1, 3}))


class TestCommunityHierarchy:
    @pytest.fixture()
    def hierarchy(self):
        covers = {
            2: CommunityCover(2, [frozenset(range(10))]),
            3: CommunityCover(3, [frozenset(range(6)), frozenset({7, 8, 9})]),
            4: CommunityCover(4, [frozenset(range(4))]),
        }
        return CommunityHierarchy(covers)

    def test_orders_and_bounds(self, hierarchy):
        assert hierarchy.orders == [2, 3, 4]
        assert hierarchy.min_k == 2
        assert hierarchy.max_k == 4

    def test_total_and_counts(self, hierarchy):
        assert hierarchy.total_communities == 4
        assert hierarchy.counts_by_k() == {2: 1, 3: 2, 4: 1}

    def test_unique_orders(self, hierarchy):
        assert hierarchy.unique_orders() == [2, 4]

    def test_find_by_label(self, hierarchy):
        assert hierarchy.find("k3id1").members == frozenset({7, 8, 9})

    def test_find_rejects_bad_labels(self, hierarchy):
        with pytest.raises(KeyError):
            hierarchy.find("nonsense")
        with pytest.raises(KeyError):
            hierarchy.find("k9id0")
        with pytest.raises(KeyError):
            hierarchy.find("k3id7")

    def test_all_communities_ascending_k(self, hierarchy):
        ks = [c.k for c in hierarchy.all_communities()]
        assert ks == sorted(ks)

    def test_mapping_protocol(self, hierarchy):
        assert len(hierarchy) == 3
        assert 3 in hierarchy
        assert list(hierarchy) == [2, 3, 4]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CommunityHierarchy({})

    def test_mismatched_cover_key_rejected(self):
        with pytest.raises(ValueError):
            CommunityHierarchy({5: CommunityCover(3, [])})
