"""Seed-sensitivity analysis: are the headline findings seed-stable?

The paper's claims are about one measured Internet; our reproduction
runs on sampled topologies, so every claim should hold across generator
seeds, not for one lucky draw.  This module re-runs the headline
pipeline over a seed set and aggregates the findings the benchmarks
assert, giving the reproduction's error bars:

* total community count and maximum order;
* the crown max-share IXP set (must be the big three every time);
* band boundaries derived from the full-share regimes;
* parallel↔main overlap mean;
* main-size monotonicity and the single-2-clique-community property.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from ..topology.generator import GeneratorConfig, generate_topology
from .bands import derive_bands
from .census import CommunityCensus
from .context import AnalysisContext
from .ixp_share import IXPShareAnalysis
from .overlap import OverlapAnalysis
from .sizes import SizeAnalysis

__all__ = ["SeedRun", "SensitivityReport", "run_sensitivity"]


@dataclass(frozen=True)
class SeedRun:
    """Headline findings for one seed."""

    seed: int
    n_ases: int
    total_communities: int
    max_k: int
    root_max: int
    crown_min: int
    crown_max_share_ixps: frozenset[str]
    overlap_mean: float
    main_monotone: bool
    single_2_clique_community: bool


@dataclass
class SensitivityReport:
    runs: list[SeedRun] = field(default_factory=list)

    @property
    def n_seeds(self) -> int:
        return len(self.runs)

    def community_count_range(self) -> tuple[int, int]:
        """(min, max) of the total community count across seeds."""
        counts = [run.total_communities for run in self.runs]
        return (min(counts), max(counts))

    def max_k_values(self) -> set[int]:
        """The set of maximum orders observed across seeds."""
        return {run.max_k for run in self.runs}

    def crown_ixps_always_big_three(self) -> bool:
        """True iff every seed's crown max-share set is {AMS-IX, DE-CIX, LINX}."""
        return all(
            run.crown_max_share_ixps == frozenset({"AMS-IX", "DE-CIX", "LINX"})
            for run in self.runs
        )

    def band_boundary_spread(self) -> tuple[int, int]:
        """(max - min) of root_max and crown_min across seeds."""
        roots = [run.root_max for run in self.runs]
        crowns = [run.crown_min for run in self.runs]
        return (max(roots) - min(roots), max(crowns) - min(crowns))

    def overlap_mean_stats(self) -> tuple[float, float]:
        """(mean, stdev) of the parallel-main overlap means across seeds."""
        values = [run.overlap_mean for run in self.runs]
        return (statistics.mean(values), statistics.stdev(values) if len(values) > 1 else 0.0)

    def invariants_always_hold(self) -> bool:
        """True iff the structural invariants held for every seed."""
        return all(
            run.main_monotone and run.single_2_clique_community for run in self.runs
        )


def run_sensitivity(
    *,
    seeds: list[int],
    config: GeneratorConfig | None = None,
) -> SensitivityReport:
    """Re-run the headline pipeline for every seed."""
    report = SensitivityReport()
    for seed in seeds:
        dataset = generate_topology(config, seed=seed)
        context = AnalysisContext.from_dataset(dataset)
        census = CommunityCensus(context.hierarchy)
        sizes = SizeAnalysis(context)
        overlap = OverlapAnalysis(context)
        ixp_share = IXPShareAnalysis(context)
        bands = derive_bands(ixp_share)
        crown_ixps = ixp_share.max_share_names_from(bands.crown_min)
        report.runs.append(
            SeedRun(
                seed=seed,
                n_ases=dataset.n_ases,
                total_communities=census.total_communities,
                max_k=census.max_k,
                root_max=bands.root_max,
                crown_min=bands.crown_min,
                crown_max_share_ixps=frozenset(crown_ixps),
                overlap_mean=overlap.parallel_main_mean_over_k(),
                main_monotone=sizes.main_is_monotone_nonincreasing(),
                single_2_clique_community=census.single_2_clique_community(),
            )
        )
    return report
