"""Fault smoke — the resilient runner under a permanently killed worker.

CI's ``fault-smoke`` job runs the scale-0.5 topology with two workers
and a fault plan that SIGKILL-kills the worker holding percolation
batch 0 on *every* attempt.  The supervised pool must ride through the
broken pools (bounded retries, pool resurrection) and finally degrade
the poisoned batch to serial in-driver execution — completing the run
with ``runner.degraded = 1`` and a hierarchy identical to an
unfaulted run.  The checkpoint directory used by the run is left under
``benchmarks/output/fault_smoke_ckpt`` so CI can upload it as an
artifact when the assertion fails.

The recorded ``runner.*`` counters land in this test's
``BENCH_*.json`` manifest, so the fault-handling trajectory (restarts,
retries, fallback batches) is archived alongside the perf numbers.
"""

import shutil
from pathlib import Path

from repro.api import run_cpm
from repro.core.serialize import hierarchy_to_dict
from repro.obs import MetricsRegistry
from repro.runner import CheckpointStore, FaultPlan, RunnerConfig
from repro.topology.generator import GeneratorConfig, generate_topology

CKPT_DIR = Path(__file__).parent / "output" / "fault_smoke_ckpt"

#: Batch 0 of the percolation phase dies on every attempt — a permanent
#: fault that must end in serial degradation, not a lost run.
FAULT_PLAN = "percolate:batch=0:kill"


def test_fault_smoke_degraded_completion(emit, bench_record, bench_kernel):
    dataset = generate_topology(GeneratorConfig(scale=0.5), seed=42)
    baseline = run_cpm(dataset.graph, kernel=bench_kernel)

    shutil.rmtree(CKPT_DIR, ignore_errors=True)
    metrics = MetricsRegistry()
    faulted = run_cpm(
        dataset.graph,
        kernel=bench_kernel,
        workers=2,
        checkpoint=CheckpointStore(CKPT_DIR),
        runner=RunnerConfig(max_retries=2, backoff_base=0.01),
        fault_plan=FaultPlan.parse(FAULT_PLAN),
        metrics=metrics,
    )

    snapshot = metrics.to_dict()
    counters = {k: v for k, v in snapshot["counters"].items() if k.startswith("runner.")}
    degraded_gauge = snapshot["gauges"].get("runner.degraded", 0)
    bench_record["runner.degraded"] = degraded_gauge
    bench_record["fault_plan"] = FAULT_PLAN
    for name, value in counters.items():
        bench_record[name] = value

    lines = [
        "Fault smoke: permanent worker kill on percolate batch 0 (scale 0.5, 2 workers)",
        f"  fault plan          : {FAULT_PLAN}",
        f"  degraded            : {faulted.stats.degraded}",
        f"  runner.degraded     : {degraded_gauge}",
    ] + [f"  {name:<20}: {value}" for name, value in sorted(counters.items())]
    emit("fault_smoke", "\n".join(lines))

    # The run must complete degraded — not crash, not hang — and the
    # degradation must leave the result untouched.
    assert faulted.stats.degraded
    assert degraded_gauge == 1
    assert counters.get("runner.pool_restarts", 0) >= 1
    assert counters.get("runner.fallback_batches", 0) >= 1
    assert hierarchy_to_dict(faulted.hierarchy) == hierarchy_to_dict(baseline.hierarchy)

    # The checkpoint kept pace with the degraded run: every order done.
    persisted = CheckpointStore(CKPT_DIR).load_phase("percolate")
    assert persisted is not None
    assert sorted(persisted) == list(range(2, faulted.stats.max_clique_size + 1))
