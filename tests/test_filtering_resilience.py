"""Tests for hierarchy filtering and routing resilience."""

import pytest

from repro.core import extract_hierarchy
from repro.core.filtering import communities_of_node, filter_communities, restrict_orders
from repro.graph import ring_of_cliques
from repro.routing import infer_relationships
from repro.routing.resilience import simulate_as_failure


class TestRestrictOrders:
    @pytest.fixture(scope="class")
    def hierarchy(self):
        return extract_hierarchy(ring_of_cliques(4, 6))

    def test_window(self, hierarchy):
        window = restrict_orders(hierarchy, min_k=3, max_k=5)
        assert window.orders == [3, 4, 5]
        assert window.counts_by_k() == {k: hierarchy.counts_by_k()[k] for k in (3, 4, 5)}

    def test_parent_links_trimmed_at_window_floor(self, hierarchy):
        window = restrict_orders(hierarchy, min_k=4)
        for child, parent in window.parent_labels.items():
            assert child.startswith(("k5", "k6"))
            assert parent.startswith(("k4", "k5"))
        # No parents point below the window.
        assert all(not p.startswith("k3") for p in window.parent_labels.values())

    def test_empty_window_rejected(self, hierarchy):
        with pytest.raises(ValueError):
            restrict_orders(hierarchy, min_k=50)


class TestFilterCommunities:
    @pytest.fixture(scope="class")
    def hierarchy(self):
        return extract_hierarchy(ring_of_cliques(4, 6))

    def test_size_filter(self, hierarchy):
        big = filter_communities(hierarchy, lambda c: c.size >= 10)
        for community in big.all_communities():
            assert community.size >= 10

    def test_parent_links_rebuilt(self, hierarchy):
        filtered = filter_communities(hierarchy, lambda c: True)
        assert len(filtered.parent_labels) == len(hierarchy.parent_labels)
        for child, parent in filtered.parent_labels.items():
            assert filtered.find(child).members <= filtered.find(parent).members

    def test_everything_removed_rejected(self, hierarchy):
        with pytest.raises(ValueError):
            filter_communities(hierarchy, lambda c: False)

    def test_communities_of_node(self, hierarchy):
        view = communities_of_node(hierarchy, 0)
        assert view.orders == [2, 3, 4, 5, 6]
        for community in view.all_communities():
            assert 0 in community.members
        # Node 0's chain: exactly one community per order in a ring corner.
        assert all(len(view[k]) == 1 for k in view.orders)


class TestResilience:
    @pytest.fixture(scope="module")
    def setup(self, tiny_dataset):
        return tiny_dataset, infer_relationships(tiny_dataset)

    def test_stub_failure_is_invisible(self, setup):
        dataset, relationships = setup
        stub = next(
            a for a, r in dataset.as_roles.items()
            if r == "stub" and dataset.graph.degree(a) == 1
        )
        impact = simulate_as_failure(dataset.graph, relationships, stub, seed=3)
        assert impact.n_pairs_sampled == 0
        assert impact.lost_fraction == 0.0

    def test_carrier_failure_hurts_more_than_provider(self, setup):
        dataset, relationships = setup
        carrier = next(a for a, r in dataset.as_roles.items() if r == "pool_carrier")
        provider = next(a for a, r in dataset.as_roles.items() if r == "provider")
        carrier_impact = simulate_as_failure(
            dataset.graph, relationships, carrier, seed=3
        )
        provider_impact = simulate_as_failure(
            dataset.graph, relationships, provider, seed=3
        )
        assert carrier_impact.n_pairs_sampled >= provider_impact.n_pairs_sampled

    def test_most_traffic_reroutes(self, setup):
        """Multi-homing means a single carrier failure rarely severs
        connectivity: pairs reroute with modest stretch."""
        dataset, relationships = setup
        carrier = next(a for a, r in dataset.as_roles.items() if r == "pool_carrier")
        impact = simulate_as_failure(dataset.graph, relationships, carrier, seed=4)
        if impact.n_pairs_sampled:
            assert impact.rerouted_pairs >= impact.lost_pairs
            assert impact.mean_stretch >= 0.0

    def test_unknown_as_rejected(self, setup):
        dataset, relationships = setup
        with pytest.raises(KeyError):
            simulate_as_failure(dataset.graph, relationships, 10**9)
