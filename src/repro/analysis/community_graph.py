"""The community graph and CPM statistical signatures (Palla et al.).

The Nature paper this method comes from ([23]) characterises a cover
not only by its communities but by four distributions measured across
them — the fingerprints that distinguish real overlapping community
structure from randomness:

* **community size** distribution;
* **membership number** — how many communities each node belongs to;
* **overlap size** — shared members between overlapping community
  pairs;
* **community degree** — in the *community graph*, whose nodes are the
  communities of one order and whose edges join overlapping pairs.

This module computes all four at a chosen order k, plus the community
graph itself, giving the reproduction the same statistical lens the
original CPM paper used.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..core.communities import CommunityCover
from ..graph.undirected import Graph

__all__ = ["CommunityGraphStats", "community_graph", "community_graph_stats"]


def community_graph(cover: CommunityCover) -> Graph:
    """Communities as nodes (labels), overlap >= 1 member as edges."""
    graph = Graph()
    communities = list(cover)
    for community in communities:
        graph.add_node(community.label)
    # Overlapping pairs via the member index — disjoint pairs untouched.
    seen: set[tuple[str, str]] = set()
    for community in communities:
        for node in community.members:
            for other in cover.communities_of(node):
                if other.label == community.label:
                    continue
                key = tuple(sorted((community.label, other.label)))
                if key not in seen:
                    seen.add(key)
                    graph.add_edge(*key)
    return graph


@dataclass
class CommunityGraphStats:
    """The four Palla et al. distributions at one order k."""

    k: int
    n_communities: int
    size_distribution: dict[int, int]
    membership_distribution: dict[int, int]
    overlap_distribution: dict[int, int]
    community_degree_distribution: dict[int, int]

    @property
    def max_membership(self) -> int:
        """The largest number of communities any single AS belongs to."""
        return max(self.membership_distribution, default=0)

    def overlapping_nodes(self) -> int:
        """Nodes in more than one community."""
        return sum(
            count for membership, count in self.membership_distribution.items() if membership > 1
        )

    def mean_community_degree(self) -> float:
        """Average number of neighbours in the community graph."""
        total = sum(d * c for d, c in self.community_degree_distribution.items())
        n = sum(self.community_degree_distribution.values())
        return total / n if n else 0.0


def community_graph_stats(cover: CommunityCover) -> CommunityGraphStats:
    """Compute all four distributions for the cover at its order."""
    sizes = Counter(c.size for c in cover)
    memberships = Counter(
        len(cover.communities_of(node)) for node in cover.nodes()
    )
    overlaps: Counter[int] = Counter()
    communities = list(cover)
    for i, a in enumerate(communities):
        for b in communities[i + 1 :]:
            shared = a.overlap(b)
            if shared:
                overlaps[shared] += 1
    cgraph = community_graph(cover)
    degrees = Counter(cgraph.degree(n) for n in cgraph.nodes())
    return CommunityGraphStats(
        k=cover.k,
        n_communities=len(cover),
        size_distribution=dict(sorted(sizes.items())),
        membership_distribution=dict(sorted(memberships.items())),
        overlap_distribution=dict(sorted(overlaps.items())),
        community_degree_distribution=dict(sorted(degrees.items())),
    )
