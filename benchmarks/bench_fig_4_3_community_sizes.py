"""Figure 4.3 — size of k-clique communities vs k.

Paper: main community size 35,390 at k = 2, decaying rapidly; parallel
sizes close to k; main comparable to parallels only near k = 36.
Shape to hold: monotone non-increasing main series covering the whole
graph at k = 2, parallel size/k ratio near 1, crossover deep in the
crown band.
"""

from repro.analysis.sizes import SizeAnalysis
from repro.report.figures import ascii_scatter, ascii_table


def test_figure_4_3_sizes(benchmark, context, emit):
    sizes = benchmark(lambda: SizeAnalysis(context))
    chart = ascii_scatter(
        {
            "main": [(float(k), float(s)) for k, s in sizes.main_series()],
            "parallel": [(float(k), float(s)) for k, s in sizes.parallel_points()],
        },
        title="Figure 4.3: Size of k-clique communities vs k (log y)",
        log_y=True,
        y_label="community size",
    )
    mean_ratio, max_ratio = sizes.parallel_size_ratio_stats()
    table = ascii_table(
        ["k", "main size"],
        [[k, s] for k, s in sizes.main_series()],
        title="Main community sizes (paper: 35,390 at k=2 shrinking to 38 at k=36)",
    )
    footer = (
        f"parallel size/k: mean={mean_ratio:.2f} max={max_ratio:.2f} "
        f"(paper: 'size close to k'); crossover k={sizes.crossover_k()}"
    )
    emit("figure_4_3", f"{chart}\n\n{table}\n{footer}")

    assert sizes.main_is_monotone_nonincreasing()
    assert sizes.main_covers_graph_at_k2()
    assert mean_ratio < 3.0
    assert sizes.crossover_k() > 0.7 * context.hierarchy.max_k
