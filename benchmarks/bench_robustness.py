"""Extension — community structure under partial observation.

The Topology dataset is a *measured* object (Section 2.1), and the
related work ([3]) warns about measurement biases.  This bench
quantifies the bias' community-level footprint: at equal edge coverage,
collector-based observation (monitors peered at the big carriers)
preserves the crown far better than uniform edge loss, while sparse
root communities suffer either way — evidence that the paper's
crown/trunk findings are robust to how the data was gathered, and that
its root-community census is a lower bound.
"""

import random

from repro.analysis.bands import derive_bands
from repro.analysis.ixp_share import IXPShareAnalysis
from repro.analysis.robustness import community_recall, uniform_edge_sample
from repro.report.figures import ascii_table
from repro.topology.generator import GeneratorConfig, generate_topology
from repro.topology.merge import merge_observations
from repro.topology.sources import observe_all

_DATASET = generate_topology(GeneratorConfig.tiny(), seed=7)


def test_measurement_robustness(benchmark, emit):
    from repro.analysis.context import AnalysisContext

    context = AnalysisContext.from_dataset(_DATASET)
    bands = derive_bands(IXPShareAnalysis(context), fallback=(6, 10))
    truth = _DATASET.graph

    observed, _ = merge_observations(observe_all(truth, seed=4))
    coverage = observed.number_of_edges / truth.number_of_edges
    observed_report = benchmark(
        lambda: community_recall(truth, observed, bands, threshold=0.5)
    )
    sampled = uniform_edge_sample(truth, coverage, random.Random(3))
    uniform_report = community_recall(truth, sampled, bands, threshold=0.5)

    rows = []
    for obs_band, uni_band in zip(observed_report.per_band, uniform_report.per_band):
        rows.append(
            [
                obs_band.band,
                f"{obs_band.k_range[0]}..{obs_band.k_range[1]}",
                obs_band.n_reference_communities,
                round(obs_band.recall, 2),
                round(uni_band.recall, 2),
            ]
        )
    table = ascii_table(
        ["band", "k range", "# true communities", "recall (observation)", "recall (uniform loss)"],
        rows,
        title=(
            f"Community recall at equal edge coverage ({coverage:.0%}): "
            "measurement process vs random loss"
        ),
    )
    footer = (
        f"max k: truth {observed_report.reference_max_k}, observed "
        f"{observed_report.observed_max_k}, uniform {uniform_report.observed_max_k}"
    )
    emit("measurement_robustness", f"{table}\n{footer}")

    crown_observed = observed_report.per_band[2]
    crown_uniform = uniform_report.per_band[2]
    assert crown_observed.recall > crown_uniform.recall
    assert observed_report.observed_max_k > uniform_report.observed_max_k
