"""Extension — the tree's shape statistics (quantifying Figure 4.2).

Chapter 5's qualitative reading of the tree — "parallel branches ...
characterized by a limited size which are rapidly incorporated into a
main community" — regenerated as numbers: branch persistence
distribution, absorption orders, and the main/parallel branching
factors.
"""

from repro.analysis.tree_metrics import tree_shape
from repro.report.figures import ascii_table


def test_tree_shape_statistics(benchmark, context, emit):
    shape = benchmark(lambda: tree_shape(context.tree))

    persistence_table = ascii_table(
        ["branch persistence (orders)", "branches"],
        [[p, n] for p, n in shape.persistence_distribution().items()],
        title="Parallel-branch persistence (the paper: 'rapidly incorporated')",
    )
    absorption_table = ascii_table(
        ["absorbed into main at k", "branches"],
        [[k, n] for k, n in shape.absorption_orders().items()],
        title="Absorption orders",
    )
    footer = (
        f"{shape.n_nodes} tree nodes ({shape.n_main} main, {shape.n_parallel} "
        f"parallel); mean persistence {shape.mean_persistence():.2f} orders, "
        f"max {shape.max_persistence()} (the MSK-IX-style chain); branching "
        f"factor main {shape.branching_factor_main:.2f} vs parallel "
        f"{shape.branching_factor_parallel:.2f}"
    )
    emit("tree_shape", f"{persistence_table}\n\n{absorption_table}\n{footer}")

    assert shape.n_main == len(context.hierarchy.orders)
    assert shape.mean_persistence() < 0.3 * context.hierarchy.max_k
    assert shape.max_persistence() >= 5
    # Main nodes carry the side branches: higher branching factor.
    assert shape.branching_factor_main > shape.branching_factor_parallel
