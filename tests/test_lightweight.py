"""Unit tests for the Lightweight Parallel CPM."""

import random

import pytest

from repro.core import LightweightParallelCPM, extract_hierarchy
from repro.graph import Graph, erdos_renyi, overlapping_cliques, ring_of_cliques


def _signature(hierarchy):
    return {
        k: sorted(sorted(map(repr, c.members)) for c in hierarchy[k])
        for k in hierarchy.orders
    }


class TestCorrectness:
    def test_matches_sequential_extractor_on_ring(self):
        g = ring_of_cliques(4, 5)
        a = LightweightParallelCPM(g).run()
        b = extract_hierarchy(g)
        assert _signature(a) == _signature(b)

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_sequential_extractor_on_random(self, seed):
        g = erdos_renyi(30, 0.3, random.Random(seed))
        a = LightweightParallelCPM(g).run()
        b = extract_hierarchy(g)
        assert _signature(a) == _signature(b)

    def test_parent_labels_match_sequential(self):
        g = ring_of_cliques(3, 6)
        a = LightweightParallelCPM(g).run()
        b = extract_hierarchy(g)
        assert a.parent_labels == b.parent_labels

    def test_window_restriction(self):
        h = LightweightParallelCPM(ring_of_cliques(3, 6)).run(min_k=3, max_k=5)
        assert h.orders == [3, 4, 5]


class TestWorkers:
    def test_two_workers_identical_output(self):
        g = ring_of_cliques(4, 5)
        sequential = LightweightParallelCPM(g, workers=1).run()
        parallel = LightweightParallelCPM(g, workers=2).run()
        assert _signature(sequential) == _signature(parallel)
        assert sequential.parent_labels == parallel.parent_labels

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            LightweightParallelCPM(Graph(), workers=0)


class TestStats:
    def test_stats_populated(self):
        g = overlapping_cliques([5, 5, 5], 4)
        cpm = LightweightParallelCPM(g)
        cpm.run()
        stats = cpm.stats
        assert stats.n_cliques == 3
        assert stats.max_clique_size == 5
        assert stats.size_histogram == {5: 3}
        assert stats.n_overlap_pairs == 3  # consecutive pairs + ends share nodes
        assert stats.total_seconds >= 0.0

    def test_errors(self):
        cpm = LightweightParallelCPM(ring_of_cliques(2, 3))
        with pytest.raises(ValueError):
            cpm.run(min_k=1)
        empty = Graph()
        empty.add_node(1)
        with pytest.raises(ValueError):
            LightweightParallelCPM(empty).run()


class TestSharding:
    def test_shard_balance(self):
        shards = LightweightParallelCPM._shard(list(range(10)), 3)
        assert [len(s) for s in shards] == [4, 3, 3]
        assert sum(shards, []) == list(range(10))

    def test_shard_more_workers_than_items(self):
        shards = LightweightParallelCPM._shard([1, 2], 5)
        assert shards == [[1], [2]]

    def test_shard_empty(self):
        assert LightweightParallelCPM._shard([], 4) == [[]]
