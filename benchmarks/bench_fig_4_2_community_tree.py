"""Figure 4.2 — the k-clique community tree.

Paper: a single tree rooted at the 2-clique community; exactly one main
(filled) community per order on the chain to the 36-clique community;
parallel branches absorbed into the main chain as k decreases; three
bands (root/trunk/crown).  Shape to hold: single root, main chain
spanning every order, branch structure present, bands derivable.
"""

from repro.analysis.bands import derive_bands
from repro.analysis.ixp_share import IXPShareAnalysis
from repro.core.tree import CommunityTree


def test_figure_4_2_tree(benchmark, context, emit):
    tree = benchmark(lambda: CommunityTree(context.hierarchy))
    bands = derive_bands(IXPShareAnalysis(context))
    branches = tree.parallel_branches()
    header = (
        "Figure 4.2: k-clique community tree "
        f"(paper: 627 nodes, bands root k<14 / trunk / crown k>28)\n"
        f"nodes: {len(tree)}; roots: {len(tree.roots)}; apex: {tree.apex.label}; "
        f"bands here: root<=k{bands.root_max}, crown>=k{bands.crown_min}\n"
        f"parallel branches (start-k, end-k, length): "
        f"{[(b[0].k, b[-1].k, len(b)) for b in branches[:12]]}"
    )
    emit("figure_4_2", f"{header}\n\n{tree.to_ascii(max_children=5)}")

    assert len(tree.roots) == 1  # connected graph → single tree
    assert [n.k for n in tree.main_chain()] == context.hierarchy.orders
    assert branches  # parallel branches exist (the paper's side chains)
    assert bands.root_max < bands.crown_min


def test_figure_4_2_dot_export(benchmark, context, emit):
    tree = CommunityTree(context.hierarchy)
    bands = derive_bands(IXPShareAnalysis(context))
    dot = benchmark(lambda: tree.to_dot(band_of=bands.band_of))
    emit("figure_4_2_dot", dot)
    assert dot.count("->") == len(tree) - 1
    # The figure's three bands are colour-coded layers of equal rank.
    assert "rank=same" in dot
    assert dot.count("fillcolor") >= len(tree)
