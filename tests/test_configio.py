"""Tests for generator-config serialisation."""

import pytest

from repro.topology import (
    GeneratorConfig,
    config_from_dict,
    config_to_dict,
    load_config,
    save_config,
)
from repro.topology.generator import CrownBlockSpec


class TestConfigRoundTrip:
    def test_default_round_trip(self):
        config = GeneratorConfig.default()
        assert config_from_dict(config_to_dict(config)) == config

    def test_tiny_round_trip_via_file(self, tmp_path):
        config = GeneratorConfig.tiny()
        path = tmp_path / "cfg.json"
        save_config(config, path)
        assert load_config(path) == config

    def test_custom_specs_survive(self):
        config = GeneratorConfig(
            crown_blocks=(CrownBlockSpec("AMS-IX", "NL", base_extra=2, n_ext=1),),
            n_stubs=10,
        )
        loaded = config_from_dict(config_to_dict(config))
        assert loaded.crown_blocks[0].base_extra == 2
        assert loaded.n_stubs == 10

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown GeneratorConfig keys"):
            config_from_dict({"n_stub": 5})

    def test_loaded_config_generates(self, tmp_path):
        from repro.topology import generate_topology

        path = tmp_path / "cfg.json"
        save_config(GeneratorConfig.tiny(), path)
        a = generate_topology(load_config(path), seed=3)
        b = generate_topology(GeneratorConfig.tiny(), seed=3)
        assert a.n_links == b.n_links

    def test_cli_generate_with_config(self, tmp_path, capsys):
        from repro.cli import main

        cfg = tmp_path / "cfg.json"
        save_config(GeneratorConfig.tiny(), cfg)
        out = tmp_path / "ds"
        assert main(["generate", str(out), "--config", str(cfg), "--seed", "5"]) == 0
        assert (out / "topology.edges").exists()
