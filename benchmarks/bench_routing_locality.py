"""Extension — the routing-level case for regional communities.

Chapter 1's motivating example: "a group of regional transit providers
... really interested in connecting to each other in order for the
traffic to remain localized and to prevent traffic from unnecessarily
traversing other transit networks."  This bench quantifies that
motivation on the policy-routing substrate:

* under Gao-Rexford routing, intra-country AS paths stay inside the
  country wherever a national provider mesh (a root community!) exists;
* surgically removing one country's provider mesh makes part of that
  country's internal traffic trombone through foreign carriers —
  locality strictly drops;
* every sampled path is valley-free, and policy reaches ~99% of pairs.
"""

import dataclasses

from repro.graph import Graph
from repro.report.figures import ascii_table
from repro.routing import infer_relationships, measure_locality, measure_path_inflation
from repro.topology.generator import GeneratorConfig, generate_topology

_DATASET = generate_topology(GeneratorConfig.tiny(), seed=7)


def _providers_of(dataset, country: str) -> list[int]:
    return [
        a
        for a in dataset.geography.ases_in_country(country)
        if dataset.as_roles.get(a) == "provider"
    ]


def test_routing_locality_and_mesh_ablation(benchmark, emit):
    relationships = infer_relationships(_DATASET)

    inflation = benchmark(
        lambda: measure_path_inflation(
            _DATASET.graph, relationships, n_destinations=12,
            sources_per_destination=30, seed=3,
        )
    )

    # Locality per country with a serious provider mesh.
    rows = []
    candidates = []
    for country in sorted(_DATASET.geography.all_countries()):
        providers = _providers_of(_DATASET, country)
        members = _DATASET.geography.ases_in_country(country)
        if len(providers) >= 3 and len(members) >= 15:
            locality = measure_locality(_DATASET, relationships, country, max_pairs=40, seed=2)
            rows.append([country, len(providers), len(members), f"{locality:.0%}"])
            candidates.append((country, providers, locality))
    locality_table = ascii_table(
        ["country", "providers", "ASes", "intra-country path locality"],
        rows,
        title="Traffic locality under Gao-Rexford routing (regional meshes = root communities)",
    )

    # Ablation: remove the best candidate's provider mesh.
    country, providers, locality_before = max(candidates, key=lambda t: t[2])
    provider_set = set(providers)
    stripped = Graph()
    stripped.add_nodes_from(_DATASET.graph.nodes())
    removed = 0
    for u, v in _DATASET.graph.edges():
        if u in provider_set and v in provider_set:
            removed += 1
            continue
        stripped.add_edge(u, v)
    ablated = dataclasses.replace(_DATASET, graph=stripped)
    locality_after = measure_locality(
        ablated, infer_relationships(ablated), country, max_pairs=40, seed=2
    )

    summary = (
        f"policy routing: {inflation.n_pairs} pairs sampled, "
        f"{inflation.valley_violations} valley violations, "
        f"{inflation.unrouted_pairs} unrouted, "
        f"mean path {inflation.mean_policy_length:.2f} hops "
        f"(shortest {inflation.mean_shortest_length:.2f})\n"
        f"mesh ablation in {country}: removed {removed} provider-mesh edges, "
        f"locality {locality_before:.0%} -> {locality_after:.0%} — traffic "
        "trombones through foreign transit once the regional community is gone"
    )
    emit("routing_locality", f"{locality_table}\n{summary}")

    assert inflation.valley_violations == 0
    assert inflation.unrouted_pairs < 0.05 * (inflation.n_pairs + inflation.unrouted_pairs)
    assert locality_before > 0.8
    assert locality_after < locality_before
