"""Extension — the measurement pipeline closed end-to-end.

Real AS-relationship datasets are inferred from observed BGP paths
(Gao 2001).  With ground truth available, this bench validates the
whole loop: generator relationships → Gao-Rexford policy paths →
collector observation → Gao inference → scored against ground truth.

Expected shape (matching Gao's own validation against AT&T data):
transit customer/provider orientation almost always correct; peering
systematically under-detected — the known weakness of degree-summit
inference, and the reason modern datasets add IXP data, exactly as the
paper does.
"""

from repro.report.figures import ascii_table
from repro.routing import (
    collect_policy_paths,
    infer_from_paths,
    infer_relationships,
    score_inference,
)
from repro.topology.generator import GeneratorConfig, generate_topology

_DATASET = generate_topology(GeneratorConfig.tiny(), seed=7)


def test_gao_relationship_inference(benchmark, emit):
    truth = infer_relationships(_DATASET)
    collection = collect_policy_paths(
        _DATASET.graph, truth, n_collectors=15, n_destinations=80, seed=1
    )
    inference = benchmark(lambda: infer_from_paths(collection.paths, _DATASET.graph))
    score = score_inference(inference.relationships, truth, collection.edges())

    table = ascii_table(
        ["metric", "value"],
        [
            ["paths collected", collection.n_paths],
            ["mean AS-path length", round(collection.mean_length(), 2)],
            ["edges observed", f"{score.n_scored_edges} / {_DATASET.graph.number_of_edges}"],
            ["overall accuracy", f"{score.accuracy:.1%}"],
            ["transit direction errors", score.transit_direction_errors],
            ["peer confusions", score.peer_confusions],
        ],
        title="Gao relationship inference vs generator ground truth",
    )
    footer = (
        "transit orientation near-perfect; peering under-detected — the "
        "documented weakness that motivates augmenting with IXP datasets "
        "(Section 2.2 of the paper)"
    )
    emit("gao_inference", f"{table}\n{footer}")

    assert score.transit_direction_errors < 0.05 * score.n_scored_edges
    assert score.peer_confusions >= score.transit_direction_errors
    assert score.accuracy > 0.6
