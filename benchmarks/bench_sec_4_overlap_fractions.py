"""Section 4 text — overlap fractions between communities at equal k.

Paper: parallel↔main mean overlap fraction > 0.432 at every k, 0.704
averaged over k (variance 0.023); 6 zero-overlap exceptions across the
whole tree; parallel↔parallel too variable to average (variance 0.136).
Shape to hold: high parallel↔main overlap with rare zero exceptions,
and parallel↔parallel visibly more variable than parallel↔main.
"""

from repro.analysis.overlap import OverlapAnalysis
from repro.report.figures import ascii_table


def test_section_4_overlap_fractions(benchmark, context, emit):
    analysis = benchmark(lambda: OverlapAnalysis(context))
    rows = [
        [
            row.k,
            row.n_parallel,
            round(row.mean_parallel_main_fraction, 3),
            row.zero_overlap_parallels,
            "-" if row.mean_parallel_parallel_fraction is None
            else round(row.mean_parallel_parallel_fraction, 3),
        ]
        for row in analysis.rows
    ]
    table = ascii_table(
        ["k", "#parallel", "mean frac vs main", "zero-overlap", "mean frac par-par"],
        rows,
        title="Section 4: overlap fractions at equal k",
    )
    footer = (
        f"par<->main over k: mean={analysis.parallel_main_mean_over_k():.3f} "
        f"(paper 0.704), var={analysis.parallel_main_variance_over_k():.3f} "
        f"(paper 0.023), min={analysis.parallel_main_min_over_k():.3f} "
        f"(paper >0.432); zero-overlap exceptions: "
        f"{analysis.total_zero_overlap_exceptions()} (paper 6); "
        f"par<->par var: {analysis.parallel_parallel_variance_over_k():.3f} (paper 0.136)"
    )
    emit("section_4_overlap", f"{table}\n{footer}")

    assert analysis.parallel_main_mean_over_k() > 0.4
    assert analysis.total_zero_overlap_exceptions() < 0.05 * context.hierarchy.total_communities
    assert (
        analysis.parallel_parallel_variance_over_k()
        > analysis.parallel_main_variance_over_k()
    )
    assert analysis.disjoint_parallel_pairs_exist()
    assert analysis.strongly_overlapping_parallel_pairs() > 0
