"""Unit tests for clique enumeration, cross-checked against networkx."""

import random
from itertools import combinations

import networkx as nx
import pytest

from repro.core import (
    CliqueCensus,
    clique_size_census,
    k_cliques,
    max_clique_size,
    maximal_cliques,
)
from repro.graph import (
    Graph,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    path_graph,
    ring_of_cliques,
)


def _as_nx(g: Graph) -> nx.Graph:
    G = nx.Graph(list(g.edges()))
    G.add_nodes_from(g.nodes())
    return G


class TestMaximalCliques:
    def test_complete_graph_single_clique(self):
        cliques = maximal_cliques(complete_graph(6))
        assert cliques == [frozenset(range(6))]

    def test_path_graph_cliques_are_edges(self):
        cliques = maximal_cliques(path_graph(4))
        assert sorted(map(sorted, cliques)) == [[0, 1], [1, 2], [2, 3]]

    def test_isolated_node_is_singleton_clique(self):
        g = Graph([(1, 2)])
        g.add_node(9)
        cliques = maximal_cliques(g)
        assert frozenset((9,)) in cliques

    def test_min_size_filter(self):
        g = Graph([(1, 2)])
        g.add_node(9)
        assert frozenset((9,)) not in maximal_cliques(g, min_size=2)

    def test_min_size_validation(self):
        with pytest.raises(ValueError):
            maximal_cliques(Graph(), min_size=0)

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_networkx_on_random_graphs(self, seed):
        g = erdos_renyi(25, 0.35, random.Random(seed))
        ours = {frozenset(c) for c in maximal_cliques(g)}
        theirs = {frozenset(c) for c in nx.find_cliques(_as_nx(g))}
        assert ours == theirs

    def test_all_results_are_maximal_cliques(self):
        g = erdos_renyi(30, 0.3, random.Random(99))
        for clique in maximal_cliques(g):
            assert g.is_clique(clique)
            # No node extends the clique.
            others = set(g.nodes()) - clique
            assert not any(clique <= g.neighbors(n) for n in others)


class TestMaxCliqueSize:
    def test_values(self):
        assert max_clique_size(complete_graph(7)) == 7
        assert max_clique_size(cycle_graph(5)) == 2
        assert max_clique_size(Graph()) == 0


class TestKCliques:
    def test_triangle_count_on_complete_graph(self):
        found = set(k_cliques(complete_graph(6), 3))
        assert len(found) == 20  # C(6,3)

    def test_all_k_subsets_of_clique(self):
        g = complete_graph(5)
        for k in range(1, 6):
            expected = {frozenset(c) for c in combinations(range(5), k)}
            assert set(k_cliques(g, k)) == expected

    def test_k1_yields_nodes(self):
        g = path_graph(3)
        assert set(k_cliques(g, 1)) == {frozenset((n,)) for n in g.nodes()}

    def test_k2_yields_edges(self):
        g = path_graph(4)
        assert set(k_cliques(g, 2)) == {frozenset(e) for e in g.edges()}

    def test_no_duplicates(self):
        g = erdos_renyi(20, 0.4, random.Random(5))
        triangles = list(k_cliques(g, 3))
        assert len(triangles) == len(set(triangles))

    def test_matches_networkx_triangle_count(self):
        g = erdos_renyi(30, 0.3, random.Random(6))
        ours = len(list(k_cliques(g, 3)))
        theirs = sum(nx.triangles(_as_nx(g)).values()) // 3
        assert ours == theirs

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            list(k_cliques(Graph(), 0))


class TestCliqueCensus:
    def test_histogram(self):
        census = clique_size_census(ring_of_cliques(4, 4))
        assert census.histogram[4] == 4
        assert census.total == 8  # 4 cliques + 4 bridge edges
        assert census.max_size == 4

    def test_share_in_band(self):
        census = clique_size_census(ring_of_cliques(4, 4))
        assert census.share_in_band(4, 4) == 0.5
        assert census.share_in_band(2, 4) == 1.0

    def test_empty_census(self):
        census = CliqueCensus([])
        assert census.total == 0
        assert census.share_in_band(1, 10) == 0.0
        assert census.dominant_band(3) == (0, 0)

    def test_dominant_band(self):
        census = CliqueCensus([frozenset(range(s)) for s in (3, 3, 3, 7)])
        lo, hi = census.dominant_band(2)
        assert (lo, hi) == (2, 3)

    def test_dominant_band_tie_keeps_lowest_window(self):
        # Sizes 2 and 5 each hold 3 cliques; every width-1 window covering
        # either ties at 3, and the tie must resolve to the lower window.
        census = CliqueCensus(
            [frozenset(range(s)) for s in (2, 2, 2, 5, 5, 5)]
        )
        assert census.dominant_band(1) == (2, 2)
        # Width 4: [2, 5] covers all six cliques; the shifted [1, 4] and
        # [3, 6] windows cover only three, so no tie here.
        assert census.dominant_band(4) == (2, 5)

    def test_dominant_band_matches_bruteforce(self):
        # The sliding-window rewrite must agree with the direct scan on
        # an irregular histogram, for every width.
        sizes = [2, 2, 3, 5, 5, 5, 6, 9, 9, 12]
        census = CliqueCensus([frozenset(range(s)) for s in sizes])
        hist = census.histogram
        for width in range(1, 14):
            best = max(
                (sum(hist.get(s, 0) for s in range(lo, lo + width)), -lo)
                for lo in range(1, census.max_size + 1)
            )
            lo = -best[1]
            assert census.dominant_band(width) == (lo, lo + width - 1)

    def test_dominant_band_rejects_bad_width(self):
        census = CliqueCensus([frozenset(range(3))])
        with pytest.raises(ValueError):
            census.dominant_band(0)
