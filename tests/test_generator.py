"""Tests for the synthetic Internet topology generator.

These check the *structural contract* of the generator: the properties
the Chapter 4 analyses rely on must hold by construction, for both the
tiny and the default profile.
"""

from repro.core import max_clique_size
from repro.graph import is_connected
from repro.topology import GeneratorConfig, InternetTopologyGenerator, generate_topology
from repro.topology.geography import Continent


class TestDeterminism:
    def test_same_seed_same_dataset(self):
        a = generate_topology(GeneratorConfig.tiny(), seed=3)
        b = generate_topology(GeneratorConfig.tiny(), seed=3)
        assert {frozenset(e) for e in a.graph.edges()} == {
            frozenset(e) for e in b.graph.edges()
        }
        assert a.ixps.to_tsv() == b.ixps.to_tsv()
        assert a.geography.to_tsv() == b.geography.to_tsv()

    def test_different_seed_different_dataset(self):
        a = generate_topology(GeneratorConfig.tiny(), seed=3)
        b = generate_topology(GeneratorConfig.tiny(), seed=4)
        assert {frozenset(e) for e in a.graph.edges()} != {
            frozenset(e) for e in b.graph.edges()
        }


class TestStructuralContract:
    def test_connected(self, tiny_dataset, default_dataset):
        assert is_connected(tiny_dataset.graph)
        assert is_connected(default_dataset.graph)

    def test_max_clique_matches_crown_spec(self, default_dataset):
        # AMS-IX block: pool 28 + 7 exclusive + 1 extension = 36.
        assert max_clique_size(default_dataset.graph) == 36

    def test_crown_exceptions(self, default_dataset):
        """Paper: 4 non-European crown ASes, 3 in no IXP."""
        named = default_dataset.as_names
        assert len(named) == 4
        geo = default_dataset.geography
        for asn in named:
            assert Continent.EUROPE not in geo.continents(asn)
        non_ixp = [a for a in named if not default_dataset.ixps.is_on_ixp(a)]
        assert len(non_ixp) == 3

    def test_large_ixps_exist_and_share_pool(self, default_dataset):
        registry = default_dataset.ixps
        for name in ("AMS-IX", "DE-CIX", "LINX"):
            assert name in registry
        shared = (
            registry["AMS-IX"].participants
            & registry["DE-CIX"].participants
            & registry["LINX"].participants
        )
        # The carrier pool participates in all three (paper: 119 shared).
        assert len(shared) >= 28

    def test_small_ixps_are_country_local(self, default_dataset):
        registry = default_dataset.ixps
        geo = default_dataset.geography
        for spec_name, country in [("VIX", "AT"), ("WIX", "NZ"), ("NIX.CZ", "CZ")]:
            ixp = registry[spec_name]
            assert ixp.country == country
            # Participants all have a presence in the host country.
            for asn in ixp.participants:
                assert country in geo.countries(asn)

    def test_tier1_mesh_present_not_on_ixp(self, default_dataset):
        gen = InternetTopologyGenerator(seed=42)
        ds = gen.generate()
        tier1 = gen.roles["tier1"]
        assert ds.graph.is_clique(tier1)
        assert not any(ds.ixps.is_on_ixp(a) for a in tier1)

    def test_tag_shape_matches_tables(self, default_dataset):
        """Tables 2.1 / 2.2 shape: national dominates; minorities of
        continental, worldwide and unknown ASes; on-IXP well below half."""
        summary = default_dataset.tag_summary()
        assert summary.ixp.on_ixp_fraction < 0.5
        assert summary.ixp.on_ixp > 0
        geo = summary.geo
        assert geo.national > geo.continental > 0
        assert geo.worldwide > 0
        assert geo.unknown > 0
        assert geo.national > 0.8 * geo.total

    def test_unknown_ases_are_low_degree(self, default_dataset):
        """Paper: unknown ASes are mostly low-degree stubs."""
        geo = default_dataset.geography
        graph = default_dataset.graph
        unknown_degrees = [graph.degree(a) for a in graph.nodes() if a not in geo]
        assert unknown_degrees
        assert max(unknown_degrees) <= 5


class TestScaling:
    def test_scale_changes_population_not_depth(self):
        small = generate_topology(GeneratorConfig(scale=0.5), seed=1)
        large = generate_topology(GeneratorConfig(scale=1.5), seed=1)
        assert large.n_ases > small.n_ases
        assert max_clique_size(small.graph) == max_clique_size(large.graph)

    def test_scaled_helper(self):
        cfg = GeneratorConfig(scale=2.0)
        assert cfg.scaled(10) == 20
        assert GeneratorConfig(scale=0.01).scaled(10) == 1

    def test_tiny_profile_is_small(self, tiny_dataset):
        assert tiny_dataset.n_ases < 800

    def test_roles_recorded_in_notes(self, default_dataset):
        roles = default_dataset.notes["roles"]
        for role in ("pool_carrier", "tier1", "provider", "stub"):
            assert roles[role] > 0
