"""Policy routing over the AS topology: why communities matter for traffic.

Annotates a synthetic Internet with business relationships, computes
Gao-Rexford (valley-free) routes, and connects the routing behaviour to
the paper's community story: regional provider meshes — the root
k-clique communities — are what keep national traffic national.

Run:  python examples/routing_study.py
"""

from collections import Counter

from repro.routing import (
    BGPSimulator,
    Relationship,
    infer_relationships,
    measure_locality,
    measure_path_inflation,
)
from repro.topology import GeneratorConfig, generate_topology


def main() -> None:
    dataset = generate_topology(GeneratorConfig.tiny(), seed=7)
    relationships = infer_relationships(dataset)
    kinds = Counter(
        relationships.kind(u, v).value if relationships.kind(u, v) is Relationship.PEER
        else "transit"
        for u, v in dataset.graph.edges()
    )
    print(f"dataset: {dataset!r}")
    print(f"relationships: {kinds['transit']} transit links, {kinds['peer']} peering links\n")

    simulator = BGPSimulator(dataset.graph, relationships)
    stub = next(a for a, r in dataset.as_roles.items() if r == "stub")
    tier1 = next(a for a, r in dataset.as_roles.items() if r == "tier1")
    path = simulator.path(stub, tier1)
    hops = " -> ".join(
        f"AS{hop}({dataset.as_roles.get(hop, '?')})" for hop in (path or ())
    )
    print(f"a stub's route to a Tier-1: {hops}")
    print(f"valley-free: {relationships.is_valley_free(path)}\n")

    inflation = measure_path_inflation(
        dataset.graph, relationships, n_destinations=12, sources_per_destination=30, seed=3
    )
    print(
        f"path sample: {inflation.n_pairs} pairs, mean policy length "
        f"{inflation.mean_policy_length:.2f} hops vs shortest "
        f"{inflation.mean_shortest_length:.2f}; "
        f"{inflation.valley_violations} valley violations; "
        f"{inflation.unrouted_pairs} unrouted pairs"
    )
    print(
        "policy paths match shortest paths here because the dense peering "
        "fabric (the paper's communities) provides valley-free shortcuts\n"
    )

    print("intra-country traffic locality (the root-community dividend):")
    shown = 0
    for country in sorted(dataset.geography.all_countries()):
        providers = [
            a
            for a in dataset.geography.ases_in_country(country)
            if dataset.as_roles.get(a) == "provider"
        ]
        if len(providers) >= 3 and shown < 8:
            locality = measure_locality(dataset, relationships, country, max_pairs=30, seed=2)
            print(f"  {country}: {locality:.0%} of internal paths stay in-country")
            shown += 1
    print(
        "\nthe paper's Chapter 1 example, measured: regional transit meshes "
        "keep traffic localized instead of traversing other transit networks"
    )


if __name__ == "__main__":
    main()
