"""Overlap counting and packed percolation buffers (integer fast path).

The overlap phase dominates LP-CPM runtime (the paper's Section 3
profile and ours agree), so the fast kernel restructures it around
three observations:

* **Truncated counting.**  Maximal cliques cannot nest, so a 2-clique
  shares at most one node with any other clique — its pairs never
  reach overlap 2 and can never merge anything at order k >= 3.
  Counting is therefore restricted to cliques of size >= 3, which on
  AS-like graphs removes the long tail of edge-cliques from the
  quadratic co-occurrence loop.
* **Chain unions for k = 2.**  At order 2 the threshold is overlap
  >= 1, i.e. "shares a node": connectivity is unchanged if, instead of
  all pairs, we union only *consecutive* clique ids in each node's
  inverted-index list.  That covers every clique (including the
  2-cliques excluded from counting) with a linear number of unions.
* **Activation orders.**  A counted pair (i, j, o) with j > i (so
  ``sizes[j] <= sizes[i]``) participates exactly at orders
  ``k <= k_act = min(sizes[j], o + 1)``.  Bucketing pairs by ``k_act``
  lets one union-find sweep orders descending, applying each pair once
  (see ``_percolate_orders_packed`` in :mod:`.lightweight`).

Pairs are packed as ``(i << shift) | j`` words in ``array('q')``
buffers whose ``bytes`` form ships to worker processes (and into the
on-disk cache) as flat memory instead of a per-batch re-pickle of a
list of tuples.  :class:`OverlapWire` is that shippable bundle.
"""

from __future__ import annotations

import time
from array import array
from bisect import bisect_left
from collections import Counter
from dataclasses import dataclass, field
from itertools import combinations

from ..obs.tracing import max_rss_kib
from ..obs.worker import current_metrics, worker_span

__all__ = [
    "OverlapWire",
    "build_node_index",
    "count_overlaps_shard",
    "chain_pairs",
    "bucketize",
    "pack_triples",
    "unpack_triples",
]


@dataclass
class OverlapWire:
    """The overlap phase's output, packed for shipping and caching.

    Every buffer is ``bytes`` (an ``array('q')``'s raw memory), so
    pickling the wire for a worker process — or writing it into the
    clique cache — is a memcpy, not a per-element traversal.

    * ``buckets`` maps an activation order ``k_act`` to the packed
      pairs that first become usable at that order;
    * ``chains`` holds the consecutive-id pairs that reproduce order-2
      connectivity (empty when the run's ``min_k > 2``);
    * ``shift`` is the pair-packing shift (``word = (i << shift) | j``).
    """

    n_cliques: int
    shift: int
    n_pairs: int
    n_chain_pairs: int
    buckets: dict[int, bytes] = field(default_factory=dict)
    chains: bytes = b""

    @property
    def n_bytes(self) -> int:
        """Total payload size (what one worker receives)."""
        return len(self.chains) + sum(len(b) for b in self.buckets.values())

    def checksum(self) -> str:
        """Content digest of the wire (BLAKE2b over every buffer).

        Used by the checkpoint/resume path to verify that a persisted
        wire deserialised intact before percolation trusts it — a
        mismatch is treated like a torn checkpoint and the overlap
        phase is recomputed.
        """
        import hashlib

        digest = hashlib.blake2b(digest_size=16)
        digest.update(f"{self.n_cliques}:{self.shift}:{self.n_pairs}:"
                      f"{self.n_chain_pairs}".encode())
        for k_act in sorted(self.buckets):
            digest.update(f"|{k_act}|".encode())
            digest.update(self.buckets[k_act])
        digest.update(b"|chains|")
        digest.update(self.chains)
        return digest.hexdigest()


def build_node_index(cliques: list[tuple[int, ...]], n_nodes: int) -> list[list[int]]:
    """Inverted node -> clique-id index over dense-id cliques.

    ``cliques`` must be sorted by size descending (the pipeline's
    invariant), so each node's list comes out in ascending clique-id
    order — which both the truncation slice and the chain unions rely
    on.
    """
    index: list[list[int]] = [[] for _ in range(n_nodes)]
    for cid, clique in enumerate(cliques):
        for v in clique:
            index[v].append(cid)
    return index


def count_overlaps_shard(shard: list[list[int]]) -> tuple[Counter, dict]:
    """Worker: co-occurrence counts over one shard of the inverted index.

    Each list in ``shard`` is one node's clique ids, already truncated
    to counting-eligible cliques (size >= 3).  ``Counter.update`` over
    ``itertools.combinations`` keeps the quadratic inner loop in C.
    Returns the pair counter plus a self-timed statistics dict shaped
    like the set kernel's, so the parent aggregates both identically.
    """
    t0, c0 = time.perf_counter(), time.process_time()
    with worker_span("worker.overlap.count", nodes=len(shard)) as span:
        counter: Counter[tuple[int, int]] = Counter()
        update = counter.update
        incidences = 0
        pair_updates = 0
        for cids in shard:
            n = len(cids)
            incidences += n
            pair_updates += n * (n - 1) // 2
            update(combinations(cids, 2))
        span.set("pairs", len(counter))
        registry = current_metrics()
        if registry is not None:
            registry.inc("worker.overlap.pair_updates", pair_updates)
            registry.inc("worker.overlap.distinct_pairs", len(counter))
            registry.observe("worker.overlap.shard_nodes", len(shard))
    stats = {
        "nodes": len(shard),
        "incidences": incidences,
        "pair_updates": pair_updates,
        "distinct_pairs": len(counter),
        "wall_seconds": time.perf_counter() - t0,
        "cpu_seconds": time.process_time() - c0,
        "max_rss_kib": max_rss_kib(),
    }
    return counter, stats


def truncate_index(index: list[list[int]], n_counting: int) -> list[list[int]]:
    """Per-node id lists restricted to the counting-eligible prefix.

    ``n_counting`` is the number of cliques of size >= 3 (a prefix of
    the size-descending clique list).  Lists are ascending, so the
    restriction is one bisect per node; nodes left with fewer than two
    eligible cliques contribute no pairs and are dropped.
    """
    out: list[list[int]] = []
    for cids in index:
        cut = bisect_left(cids, n_counting)
        if cut >= 2:
            out.append(cids if cut == len(cids) else cids[:cut])
    return out


def chain_pairs(index: list[list[int]], shift: int) -> array:
    """Packed consecutive-id pairs reproducing order-2 connectivity.

    Unioning ``(cids[t], cids[t+1])`` for every node chains together
    all cliques sharing that node — exactly the overlap >= 1 relation
    percolation needs at k = 2, in O(incidences) pairs instead of
    O(incidences^2) co-occurrences.
    """
    out = array("q")
    append = out.append
    for cids in index:
        prev = -1
        for cid in cids:
            if prev >= 0:
                append((prev << shift) | cid)
            prev = cid
    return out


def bucketize(
    counts: Counter, sizes: list[int], shift: int
) -> dict[int, array]:
    """Group counted pairs by activation order, packed.

    A pair's activation order is ``k_act = min(sizes[j], o + 1)`` (with
    j > i and sizes descending, ``sizes[j]`` is the smaller clique):
    the largest k at which both cliques are eligible and the overlap
    meets the k - 1 threshold.  Overlap-1 pairs are dropped entirely —
    they only matter at k = 2, where the chain pairs already cover
    them.
    """
    buckets: dict[int, array] = {}
    get = buckets.get
    for (i, j), o in counts.items():
        if o <= 1:
            continue
        sj = sizes[j]
        k_act = sj if sj < o + 1 else o + 1
        arr = get(k_act)
        if arr is None:
            arr = buckets[k_act] = array("q")
        arr.append((i << shift) | j)
    return buckets


def pack_triples(pairs: list[tuple[int, int, int]]) -> array:
    """Flatten (i, j, overlap) triples into a stride-3 ``array('q')``.

    The set kernel's percolation pairs, in shippable form: the bytes of
    this array replace the old per-batch re-pickle of the whole list of
    tuples (the O(workers x pairs) fan-out this PR removes).
    """
    out = array("q")
    for triple in pairs:
        out.extend(triple)
    return out


def unpack_triples(blob: bytes) -> list[tuple[int, int, int]]:
    """Rebuild the (i, j, overlap) list from a stride-3 buffer."""
    arr = array("q")
    arr.frombytes(blob)
    return list(zip(arr[0::3], arr[1::3], arr[2::3]))
