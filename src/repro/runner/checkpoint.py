"""Phase-level checkpoints for LP-CPM runs.

The paper's extraction ran for 93 hours; on that horizon a crash that
loses all completed phases is not an inconvenience, it is the run.  A
:class:`CheckpointStore` persists the output of each pipeline phase —
enumeration, the overlap wire, and the accumulated per-order
percolation groups — into a directory of atomically-written pickles,
so an interrupted ``communities``/``paper`` run restarted with
``--resume`` picks up from the last completed phase (and, within the
percolation phase, from the last completed *order batch*).

Layout of a checkpoint directory::

    <dir>/META.json           # schema, graph checksum, kernel, version
    <dir>/enumerate.pickle    # phase 1 output
    <dir>/overlap.pickle      # phase 2 output (wire/overlaps + integrity checksum)
    <dir>/percolate.pickle    # {k: clique-id groups} for completed orders
    <dir>/session.pickle      # a persisted incremental CPMSession (exclusive
                              # with the three batch phases; docs/incremental.md)

Every write goes through :func:`repro.core.cache.atomic_bytes_dump`
(same-directory temp file + ``os.replace``), so a crash mid-write can
never leave a torn phase file — a torn or unreadable entry simply
reads back as "phase not done" and is recomputed.  ``META.json`` is
validated on resume: a schema, graph-checksum or kernel mismatch
raises :class:`CheckpointMismatchError` instead of silently resuming
the wrong run (the CLI maps this to a clean non-zero exit).
"""

from __future__ import annotations

import json
import os
import pickle
from pathlib import Path
from typing import Any

from ..core.cache import atomic_bytes_dump, atomic_pickle_dump

__all__ = [
    "CheckpointStore",
    "CheckpointError",
    "CheckpointMismatchError",
    "CHECKPOINT_SCHEMA_VERSION",
    "PHASES",
]

#: Bump on any change to the phase payload layout; old checkpoints
#: then fail resume loudly instead of deserialising garbage.
CHECKPOINT_SCHEMA_VERSION = 1

#: The checkpointable phases, in pipeline order.  The ``shard_*``
#: phases hold the sharded pipeline's per-task partials (completed
#: shards of a fan-out still in flight); the unprefixed phase stores
#: the assembled result once the fan-out finishes, so serial and
#: sharded runs can resume each other's completed phases.  ``session``
#: is not a pipeline phase: it is the single-payload slot an
#: incremental :class:`~repro.incremental.CPMSession` persists itself
#: into (the session state subsumes the batch phases, so they are
#: never mixed in one directory — ``open`` clears the others).
PHASES = (
    "shard_enumerate",
    "enumerate",
    "shard_overlap",
    "overlap",
    "shard_percolate",
    "percolate",
    "session",
)


class CheckpointError(ValueError):
    """Base class for checkpoint problems (a :class:`ValueError`)."""


class CheckpointMismatchError(CheckpointError):
    """The checkpoint on disk does not belong to this run.

    Raised on resume when the stored schema version, graph checksum or
    kernel differs from the current run's — continuing would splice
    phases of two different computations together.
    """


class CheckpointStore:
    """Directory-backed store of per-phase LP-CPM results.

    >>> import tempfile
    >>> store = CheckpointStore(tempfile.mkdtemp())
    >>> store.open(checksum="abc", kernel="bitset", resume=False)
    >>> store.store_phase("percolate", {4: [[0, 1]]})
    >>> store.load_phase("percolate")
    {4: [[0, 1]]}
    """

    META_NAME = "META.json"

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    @property
    def meta_path(self) -> Path:
        """Path of the ``META.json`` identity file."""
        return self.root / self.META_NAME

    def phase_path(self, phase: str) -> Path:
        """Path of one phase's pickle (phase must be in :data:`PHASES`)."""
        if phase not in PHASES:
            raise ValueError(f"unknown checkpoint phase {phase!r}; expected one of {PHASES}")
        return self.root / f"{phase}.pickle"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def open(self, *, checksum: str, kernel: str, resume: bool) -> None:
        """Bind the store to one run, validating or resetting the directory.

        With ``resume=True`` an existing ``META.json`` must match the
        run (schema version, graph checksum, kernel) or
        :class:`CheckpointMismatchError` is raised; an empty directory
        starts fresh (there is simply nothing to resume).  With
        ``resume=False`` any previous content is cleared first.
        """
        meta = self._read_meta() if resume else None
        if resume and meta is not None:
            expected = {
                "schema": CHECKPOINT_SCHEMA_VERSION,
                "checksum": checksum,
                "kernel": kernel,
            }
            for key, want in expected.items():
                got = meta.get(key)
                if got != want:
                    raise CheckpointMismatchError(
                        f"checkpoint at {self.root} was written for {key}={got!r}, "
                        f"this run has {key}={want!r}; refusing to resume "
                        "(use a fresh --checkpoint-dir or drop --resume)"
                    )
            return
        self.clear()
        self._write_meta(checksum=checksum, kernel=kernel)

    def clear(self) -> None:
        """Remove every phase file and the META (idempotent)."""
        for phase in PHASES:
            try:
                self.phase_path(phase).unlink()
            except FileNotFoundError:
                pass
        try:
            self.meta_path.unlink()
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------
    # Phase payloads
    # ------------------------------------------------------------------
    def has_phase(self, phase: str) -> bool:
        """True iff a payload for ``phase`` is on disk."""
        return self.phase_path(phase).is_file()

    def load_phase(self, phase: str) -> Any | None:
        """The stored payload for ``phase``, or None if absent/unreadable.

        A torn or stale entry is treated as "not done" — the phase is
        recomputed and the rewrite repairs the file.
        """
        try:
            with open(self.phase_path(phase), "rb") as fh:
                return pickle.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return None

    def store_phase(self, phase: str, payload: Any) -> Path:
        """Atomically persist ``phase``'s payload; returns its path."""
        return atomic_pickle_dump(self.phase_path(phase), payload)

    # ------------------------------------------------------------------
    # META
    # ------------------------------------------------------------------
    def meta(self) -> dict | None:
        """The directory's ``META.json`` contents, or None when absent.

        The public read used by :func:`repro.incremental.load_session`
        to discover what a directory holds (schema, checksum, kernel
        tag) *before* deciding to trust its payloads — unlike
        :meth:`open`, it never clears or rewrites anything.  An
        unreadable META raises :class:`CheckpointMismatchError`.
        """
        return self._read_meta()

    def _read_meta(self) -> dict | None:
        try:
            return json.loads(self.meta_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointMismatchError(
                f"checkpoint META at {self.meta_path} is unreadable: {exc}"
            ) from exc

    def _write_meta(self, *, checksum: str, kernel: str) -> None:
        from .. import __version__

        meta = {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "checksum": checksum,
            "kernel": kernel,
            "repro": __version__,
        }
        atomic_bytes_dump(
            self.meta_path, (json.dumps(meta, indent=2) + "\n").encode("utf-8")
        )

    def __repr__(self) -> str:
        done = [phase for phase in PHASES if self.has_phase(phase)]
        return f"CheckpointStore({str(self.root)!r}, phases={done})"
