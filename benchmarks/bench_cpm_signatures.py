"""Extension — the CPM statistical signatures (Palla et al., Nature 2005).

The method paper characterises covers by four distributions: community
size, membership number, overlap size and community degree (in the
community graph).  Regenerating them on the synthetic Internet shows
the same qualitative fingerprints the original reported for real
networks: heavy-tailed sizes, most nodes in one community with a
multi-membership tail (the multi-IXP carriers), small overlaps
dominating, and a hub in the community graph (the main community,
overlapping every parallel one).
"""

from repro.analysis.community_graph import community_graph_stats
from repro.report.figures import ascii_table

_K = 4


def test_cpm_statistical_signatures(benchmark, context, emit):
    stats = benchmark(lambda: community_graph_stats(context.hierarchy[_K]))

    def top_rows(distribution, n=8):
        return [[value, count] for value, count in list(distribution.items())[:n]]

    tables = [
        ascii_table(["community size", "count"], top_rows(stats.size_distribution),
                    title=f"Community size distribution at k={_K}"),
        ascii_table(["memberships", "ASes"], top_rows(stats.membership_distribution),
                    title="Membership number distribution (communities per AS)"),
        ascii_table(["overlap size", "pairs"], top_rows(stats.overlap_distribution),
                    title="Overlap size distribution"),
        ascii_table(["community degree", "count"], top_rows(stats.community_degree_distribution),
                    title="Community degree distribution (community graph)"),
    ]
    footer = (
        f"{stats.n_communities} communities; {stats.overlapping_nodes()} ASes in >1 "
        f"community (max membership {stats.max_membership}); mean community degree "
        f"{stats.mean_community_degree():.2f}"
    )
    emit("cpm_signatures", "\n\n".join(tables) + f"\n{footer}")

    # Palla-style fingerprints.
    assert stats.overlapping_nodes() > 0
    assert stats.max_membership >= 2
    assert 1 in stats.membership_distribution  # single-membership majority
    assert stats.membership_distribution[1] > stats.overlapping_nodes()
    # The community graph has a hub: the main community overlaps many.
    assert max(stats.community_degree_distribution) > 5
