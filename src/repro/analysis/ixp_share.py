"""IXP-share analysis (Section 4: tags over the community tree).

For each community: the fraction of its members that are on-IXP ASes,
its max-share-IXP (the IXP with the most participants in common) and
its full-share-IXPs (IXPs whose participant list covers every member).
Findings reproduced:

* communities of high order are made almost entirely of on-IXP ASes
  (paper: > 90% for every k >= 16; variable below);
* 35 communities are subgraphs of an IXP-induced subgraph (have a
  full-share IXP);
* three containment regimes: high k — full-share only at the largest
  IXPs; low k — full-share at small regional IXPs; a middle band with
  no full-share at all (this regime structure is what defines the
  crown/trunk/root bands of :mod:`repro.analysis.bands`).
"""

from __future__ import annotations

from dataclasses import dataclass

from .context import AnalysisContext

__all__ = ["CommunityIXPShare", "IXPShareAnalysis"]


@dataclass(frozen=True)
class CommunityIXPShare:
    """Per-community IXP tagging record."""

    label: str
    k: int
    size: int
    is_main: bool
    on_ixp_fraction: float
    max_share_ixp: str | None
    max_share_fraction: float
    full_share_ixps: tuple[str, ...]

    @property
    def has_full_share(self) -> bool:
        return bool(self.full_share_ixps)


class IXPShareAnalysis:
    """IXP share records for every community in the hierarchy."""

    def __init__(self, context: AnalysisContext) -> None:
        self.context = context
        registry = context.dataset.ixps
        on_ixp = registry.on_ixp_ases()
        tree = context.tree
        self.records: list[CommunityIXPShare] = []
        for community in context.hierarchy.all_communities():
            members = set(community.members)
            max_share = registry.max_share(members)
            self.records.append(
                CommunityIXPShare(
                    label=community.label,
                    k=community.k,
                    size=community.size,
                    is_main=tree.is_main(community),
                    on_ixp_fraction=len(members & on_ixp) / len(members),
                    max_share_ixp=max_share.ixp_name if max_share else None,
                    max_share_fraction=max_share.fraction if max_share else 0.0,
                    full_share_ixps=tuple(
                        s.ixp_name for s in registry.full_shares(members)
                    ),
                )
            )

    def record(self, label: str) -> CommunityIXPShare:
        """The share record of the community with the given label."""
        for record in self.records:
            if record.label == label:
                return record
        raise KeyError(f"no record for community {label!r}")

    # ------------------------------------------------------------------
    # Headline statements
    # ------------------------------------------------------------------
    def min_on_ixp_fraction_from(self, k: int) -> float:
        """Minimum on-IXP fraction over all communities of order >= k.

        The paper: >= 0.90 from k = 16 up.
        """
        values = [r.on_ixp_fraction for r in self.records if r.k >= k]
        return min(values) if values else 0.0

    def high_on_ixp_threshold(self, *, fraction: float = 0.9) -> int | None:
        """Smallest k such that every community of order >= k clears
        the on-IXP fraction (the paper's k = 16 boundary)."""
        orders = sorted({r.k for r in self.records})
        for k in orders:
            if self.min_on_ixp_fraction_from(k) >= fraction:
                return k
        return None

    def full_share_communities(self) -> list[CommunityIXPShare]:
        """All communities fully inside an IXP-induced subgraph (paper: 35)."""
        return [r for r in self.records if r.has_full_share]

    def full_share_orders(self) -> list[int]:
        """Sorted distinct orders k holding a full-share community."""
        return sorted({r.k for r in self.full_share_communities()})

    def no_full_share_band(self) -> tuple[int, int] | None:
        """The maximal k-interval strictly between the low-order and
        high-order full-share regimes where no community has a
        full-share IXP (the paper: k in [14, 28])."""
        orders = self.full_share_orders()
        if len(orders) < 2:
            return None
        # Find the largest gap between consecutive full-share orders.
        best: tuple[int, int] | None = None
        for a, b in zip(orders, orders[1:]):
            if b - a > 1:
                gap = (a + 1, b - 1)
                if best is None or (gap[1] - gap[0]) > (best[1] - best[0]):
                    best = gap
        return best

    def max_share_names_from(self, k: int) -> set[str]:
        """Distinct max-share IXPs over communities of order >= k.

        The paper: for crown communities this set is exactly
        {AMS-IX, DE-CIX, LINX}.
        """
        return {
            r.max_share_ixp
            for r in self.records
            if r.k >= k and r.max_share_ixp is not None
        }
