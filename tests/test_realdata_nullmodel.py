"""Tests for the real-data parsers and the degree-preserving null model."""

import random

import pytest

from repro.graph import Graph, degree_preserving_null, double_edge_swap, erdos_renyi
from repro.routing import Relationship
from repro.topology import parse_as_links, parse_as_relationships
from repro.topology.realdata import RealDataError


class TestAsLinksParser:
    def test_direct_and_indirect(self):
        g = parse_as_links(["D|1|2|mon1", "I|2|3|mon1"])
        assert g.has_edge(1, 2) and g.has_edge(2, 3)

    def test_indirect_can_be_excluded(self):
        g = parse_as_links(["D|1|2|m", "I|2|3|m"], include_indirect=False)
        assert g.has_edge(1, 2)
        assert not g.has_edge(2, 3)

    def test_moas_expansion(self):
        g = parse_as_links(["D|174_3356|7018|m"])
        assert g.has_edge(174, 7018)
        assert g.has_edge(3356, 7018)
        assert not g.has_edge(174, 3356)

    def test_metadata_records_skipped(self):
        g = parse_as_links(["T|stamp|stuff", "M|monitor|x", "D|1|2|m"])
        assert g.number_of_edges == 1

    def test_comments_and_blank_lines(self):
        g = parse_as_links(["# header", "", "D|5|6|m"])
        assert g.has_edge(5, 6)

    def test_self_link_skipped(self):
        g = parse_as_links(["D|7|7|m"])
        assert g.number_of_edges == 0

    def test_unknown_record_rejected(self):
        with pytest.raises(RealDataError, match="unknown record"):
            parse_as_links(["X|1|2|m"])

    def test_bad_asn_rejected(self):
        with pytest.raises(RealDataError, match="ASN field"):
            parse_as_links(["D|abc|2|m"])


class TestAsRelationshipsParser:
    def test_provider_customer(self):
        rel = parse_as_relationships(["701|7018|-1"])
        assert rel.kind(7018, 701) is Relationship.PROVIDER

    def test_peering_and_siblings(self):
        rel = parse_as_relationships(["1|2|0", "3|4|2"])
        assert rel.kind(1, 2) is Relationship.PEER
        assert rel.kind(3, 4) is Relationship.PEER

    def test_code_plus_one(self):
        rel = parse_as_relationships(["10|20|1"])
        assert rel.kind(10, 20) is Relationship.PROVIDER

    def test_malformed_lines(self):
        with pytest.raises(RealDataError):
            parse_as_relationships(["1|2"])
        with pytest.raises(RealDataError):
            parse_as_relationships(["a|b|0"])
        with pytest.raises(RealDataError):
            parse_as_relationships(["1|2|9"])


class TestNullModel:
    def test_degrees_preserved(self):
        g = erdos_renyi(60, 0.15, random.Random(1))
        null = degree_preserving_null(g, rng=random.Random(2))
        assert null.degrees() == g.degrees()
        assert null.number_of_edges == g.number_of_edges

    def test_structure_randomised(self):
        g = erdos_renyi(60, 0.15, random.Random(3))
        null = degree_preserving_null(g, rng=random.Random(4))
        original = {frozenset(e) for e in g.edges()}
        rewired = {frozenset(e) for e in null.edges()}
        assert original != rewired
        # A healthy chain replaces a large share of edges.
        assert len(original & rewired) < 0.8 * len(original)

    def test_swap_count_reported(self):
        g = erdos_renyi(40, 0.2, random.Random(5))
        performed = double_edge_swap(g, n_swaps=50, rng=random.Random(6))
        assert 0 < performed <= 50

    def test_no_self_loops_or_multiedges(self):
        g = erdos_renyi(40, 0.2, random.Random(7))
        double_edge_swap(g, n_swaps=200, rng=random.Random(8))
        for u, v in g.edges():
            assert u != v

    def test_tiny_graph_no_swaps(self):
        g = Graph([(1, 2)])
        assert double_edge_swap(g, n_swaps=10, rng=random.Random(0)) == 0

    def test_null_destroys_clique_structure(self, tiny_dataset):
        """The headline: same degrees, no deep communities."""
        from repro.core import max_clique_size

        null = degree_preserving_null(tiny_dataset.graph, rng=random.Random(5))
        assert max_clique_size(null) < max_clique_size(tiny_dataset.graph)
