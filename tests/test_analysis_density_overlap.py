"""Tests for the Figure 4.4 density/ODF analysis and the Section 4
overlap-fraction analysis."""

import pytest

from repro.analysis import DensityOdfAnalysis, OverlapAnalysis


class TestDensityOdf:
    @pytest.fixture(scope="class")
    def analysis(self, default_context):
        return DensityOdfAnalysis(default_context)

    def test_all_metrics_in_unit_interval(self, analysis):
        for p in analysis.points:
            assert 0.0 <= p.link_density <= 1.0
            assert 0.0 <= p.average_odf <= 1.0

    def test_main_density_low_then_high(self, analysis):
        """Case 1 vs case 2: chains at low k, cliques in the crown."""
        assert analysis.main_density_low_then_high()

    def test_clique_like_top(self, analysis):
        assert analysis.clique_like_top(threshold=0.9)

    def test_low_k_main_density_is_low(self, analysis):
        series = dict(analysis.main_density_series())
        assert series[2] < 0.01
        assert series[3] < 0.05

    def test_main_odf_increases_to_crown(self, analysis):
        assert analysis.main_odf_increases_to_crown()

    def test_low_k_main_odf_is_low(self, analysis):
        """Members of the giant low-k communities keep links internal."""
        series = dict(analysis.main_odf_series())
        assert series[2] == 0.0  # whole graph: nothing is external
        assert series[3] < 0.3

    def test_parallel_low_k_variability(self, analysis):
        """Case 3: small parallel communities have variable density."""
        assert analysis.parallel_variability(k_max=7) > 0.1

    def test_series_cover_all_orders(self, analysis, default_context):
        main_ks = [k for k, _ in analysis.main_density_series()]
        assert main_ks == default_context.hierarchy.orders


class TestOverlap:
    @pytest.fixture(scope="class")
    def analysis(self, default_context):
        return OverlapAnalysis(default_context)

    def test_rows_only_for_orders_with_parallels(self, analysis, default_context):
        for row in analysis.rows:
            assert len(default_context.hierarchy[row.k]) >= 2
            assert row.n_parallel >= 1

    def test_parallel_main_mean_is_substantial(self, analysis):
        """Paper: 0.704 on the real graph; the synthetic graph must at
        least show the same who-wins (most parallel members also sit in
        the main community at mid/high k)."""
        assert analysis.parallel_main_mean_over_k() > 0.4

    def test_mean_fraction_bounds(self, analysis):
        for row in analysis.rows:
            assert 0.0 <= row.mean_parallel_main_fraction <= 1.0

    def test_zero_overlap_is_rare_exception(self, analysis, default_context):
        """Paper: 6 exceptions out of 627 communities."""
        exceptions = analysis.total_zero_overlap_exceptions()
        assert exceptions < 0.05 * default_context.hierarchy.total_communities

    def test_crown_overlap_is_high(self, analysis, default_context):
        """Crown parallels share the big-IXP carrier pool with main."""
        max_k = default_context.hierarchy.max_k
        crown_rows = [r for r in analysis.rows if r.k >= max_k - 5]
        assert crown_rows
        assert all(r.mean_parallel_main_fraction > 0.6 for r in crown_rows)

    def test_parallel_parallel_more_variable_than_parallel_main(self, analysis):
        """Paper: par-par variance 0.136 vs par-main 0.023."""
        assert (
            analysis.parallel_parallel_variance_over_k()
            > analysis.parallel_main_variance_over_k()
        )

    def test_finding_b_disjoint_parallels_exist(self, analysis):
        assert analysis.disjoint_parallel_pairs_exist()

    def test_finding_c_strongly_overlapping_parallels_exist(self, analysis):
        assert analysis.strongly_overlapping_parallel_pairs(threshold=0.5) > 0
