"""Weighted Clique Percolation (CPMw).

Farkas, Ábel, Palla & Vicsek (New J. Phys. 2007) extend the k-clique
community definition of [23] to weighted graphs: only k-cliques whose
*intensity* (geometric mean of their edge weights) reaches a threshold
I₀ participate in percolation; adjacency and community formation are
unchanged.  Setting I₀ = 0 recovers the unweighted communities.

Intensity filtering applies to individual k-cliques — a heavy maximal
clique can contain light k-subcliques and vice versa — so CPMw
percolates the raw k-cliques directly (like
:func:`repro.core.percolation.k_clique_communities_direct`) rather than
through maximal cliques.  This bounds it to moderate k and graph sizes,
which matches its role here: the weighted member of the method family,
validated on weighted toy topologies, not a replacement for the
unweighted LP-CPM pipeline.
"""

from __future__ import annotations

from ..graph.weighted import WeightedGraph
from .cliques import k_cliques
from .communities import CommunityCover
from .unionfind import UnionFind

__all__ = ["weighted_k_clique_communities", "intensity_sweep"]


def weighted_k_clique_communities(
    graph: WeightedGraph,
    k: int,
    intensity_threshold: float = 0.0,
) -> CommunityCover:
    """The CPMw communities of ``graph`` at order ``k`` and threshold I₀.

    >>> g = WeightedGraph([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 0.01)])
    >>> len(weighted_k_clique_communities(g, 3, 0.5))
    0
    >>> len(weighted_k_clique_communities(g, 3, 0.0))
    1
    """
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    if intensity_threshold < 0:
        raise ValueError(f"intensity threshold must be >= 0, got {intensity_threshold}")
    kept = [
        clique
        for clique in k_cliques(graph, k)
        if graph.intensity(clique) >= intensity_threshold
    ]
    if not kept:
        return CommunityCover(k, [])
    uf = UnionFind(range(len(kept)))
    by_facet: dict[frozenset, int] = {}
    for cid, clique in enumerate(kept):
        for node in clique:
            facet = clique - {node}
            anchor = by_facet.setdefault(facet, cid)
            if anchor != cid:
                uf.union(anchor, cid)
    member_sets = [
        frozenset(node for cid in group for node in kept[cid]) for group in uf.groups()
    ]
    return CommunityCover(k, member_sets)


def intensity_sweep(
    graph: WeightedGraph,
    k: int,
    thresholds: list[float],
) -> dict[float, CommunityCover]:
    """CPMw covers across a threshold sweep (one k-clique enumeration).

    CPMw's I₀ is chosen in practice by sweeping until the giant
    community just breaks apart (Farkas et al.'s criterion); this
    helper produces the sweep, enumerating and scoring each k-clique
    once.
    """
    if any(t < 0 for t in thresholds):
        raise ValueError("intensity thresholds must be >= 0")
    scored = [(clique, graph.intensity(clique)) for clique in k_cliques(graph, k)]
    covers: dict[float, CommunityCover] = {}
    for threshold in thresholds:
        kept = [clique for clique, intensity in scored if intensity >= threshold]
        if not kept:
            covers[threshold] = CommunityCover(k, [])
            continue
        uf = UnionFind(range(len(kept)))
        by_facet: dict[frozenset, int] = {}
        for cid, clique in enumerate(kept):
            for node in clique:
                facet = clique - {node}
                anchor = by_facet.setdefault(facet, cid)
                if anchor != cid:
                    uf.union(anchor, cid)
        covers[threshold] = CommunityCover(
            k,
            [frozenset(n for cid in group for n in kept[cid]) for group in uf.groups()],
        )
    return covers
