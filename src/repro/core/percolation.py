"""The Clique Percolation Method (CPM).

Definition reproduced (Palla et al. [23], Section 3 of the paper): a
**k-clique community** is the union of all k-cliques that can be
reached from one another through a series of adjacent k-cliques, where
two k-cliques are adjacent iff they share k-1 nodes.

Two implementations:

``k_clique_communities_direct``
    The literal definition: enumerate every k-clique, link adjacent
    pairs, take connected components.  Exponential in practice; kept as
    the executable specification and test oracle.

``k_clique_communities`` / ``extract_hierarchy``
    The CFinder formulation on **maximal** cliques: two maximal cliques
    of size >= k are in the same k-clique community iff they are
    connected through maximal cliques pairwise overlapping in >= k-1
    nodes.  Equivalent to the definition because (a) every k-clique
    lies inside some maximal clique of size >= k, (b) within one
    maximal clique all k-cliques are CPM-connected (walk one node at a
    time, keeping k-1 shared), and (c) an overlap of size >= k-1
    between two maximal cliques contains a shared (k-1)-set extendable
    to adjacent k-cliques on both sides.  The test-suite checks this
    equivalence exhaustively on small graphs and against networkx.

The overlap computation is shared across all orders k by
:class:`CliqueOverlapIndex`, so the full hierarchy (every k from 2 to
the clique number) costs one overlap pass plus one union-find sweep per
order — the structure the Lightweight Parallel CPM [11] parallelises.
"""

from __future__ import annotations

from array import array
from collections import Counter
from collections.abc import Hashable, Sequence

from ..graph.undirected import Graph
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import NULL_TRACER, Tracer
from .cliques import k_cliques, maximal_cliques
from .communities import CommunityCover, CommunityHierarchy, rank_member_sets
from .overlap import OverlapWire
from .unionfind import IntUnionFind, UnionFind

__all__ = [
    "CliqueOverlapIndex",
    "k_clique_communities",
    "k_clique_communities_direct",
    "extract_hierarchy",
    "build_hierarchy",
    "sweep_wire",
]


def sweep_wire(
    orders: Sequence[int],
    eligibles: Sequence[int | Sequence[int]],
    wire: OverlapWire,
) -> tuple[dict[int, list[list[int]]], int, int]:
    """One descending union-find sweep over a packed overlap wire.

    ``orders`` must be strictly descending, with ``eligibles`` aligned:
    each entry is either the *count* of cliques of size >= that order
    (a prefix, for the batch kernels whose clique ids are assigned in
    size-descending order) or an explicit *list* of the eligible
    clique ids (for the incremental session, whose stable lifetime ids
    are not size-sorted).  A pair bucketed at activation order
    ``k_act`` is usable at every ``k <= k_act``, so one
    :class:`~.unionfind.IntUnionFind` serves the whole batch: walking
    orders downward, each bucket with ``k_act >= k`` is merged exactly
    once and groups are snapshotted over the eligible cliques.  At
    k = 2 the chain buffer is folded in (order-2 connectivity over
    *all* cliques, including the 2-cliques the counting phase
    excludes).

    This is the percolation core shared by the parallel kernels (via
    ``_percolate_orders_packed`` in :mod:`.lightweight`, which adds
    worker spans and self-timing) and by the incremental
    :class:`~repro.incremental.CPMSession`, which re-sweeps only the
    orders a delta affected over its persistent pair wire.  Returns
    ``(groups_by_order, merges, pairs_applied)``.
    """
    uf = IntUnionFind(wire.n_cliques)
    shift = wire.shift
    bucket_orders = sorted(wire.buckets, reverse=True)
    bi = 0
    n_buckets = len(bucket_orders)
    applied = 0
    merges = 0
    result: dict[int, list[list[int]]] = {}
    for idx, k in enumerate(orders):
        while bi < n_buckets and bucket_orders[bi] >= k:
            buf = array("q")
            buf.frombytes(wire.buckets[bucket_orders[bi]])
            applied += len(buf)
            merges += uf.union_packed(buf, shift)
            bi += 1
        if k == 2 and wire.chains:
            buf = array("q")
            buf.frombytes(wire.chains)
            applied += len(buf)
            merges += uf.union_packed(buf, shift)
        eligible = eligibles[idx]
        if isinstance(eligible, int):
            result[k] = [] if eligible == 0 else uf.groups(eligible)
        else:
            result[k] = uf.groups_of(eligible)
    return result, merges, applied


class CliqueOverlapIndex:
    """Maximal cliques plus their pairwise overlap sizes.

    Built once per graph; answers percolation queries for every order
    k.  Overlapping pairs are found through an inverted node→cliques
    index, so only pairs that actually share nodes are ever touched
    (the all-pairs matrix of the original CFinder is never formed —
    this is the 'lightweight' idea of [11]).
    """

    def __init__(
        self,
        cliques: Sequence[frozenset],
        *,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.cliques: list[frozenset] = sorted(cliques, key=len, reverse=True)
        self.sizes: list[int] = [len(c) for c in self.cliques]
        self._overlaps: dict[tuple[int, int], int] | None = None
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    @classmethod
    def from_graph(
        cls,
        graph: Graph,
        *,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> "CliqueOverlapIndex":
        """Enumerate the maximal cliques of ``graph`` and index them."""
        tracer = tracer if tracer is not None else NULL_TRACER
        with tracer.span("cpm.enumerate"):
            cliques = maximal_cliques(graph, min_size=2)
        index = cls(cliques, tracer=tracer, metrics=metrics)
        index.metrics.inc("cliques.enumerated", len(cliques))
        return index

    @property
    def max_clique_size(self) -> int:
        return self.sizes[0] if self.sizes else 0

    def node_index(self) -> dict[Hashable, list[int]]:
        """Inverted index: node -> ids of maximal cliques containing it."""
        index: dict[Hashable, list[int]] = {}
        for cid, clique in enumerate(self.cliques):
            for node in clique:
                index.setdefault(node, []).append(cid)
        return index

    def overlaps(self) -> dict[tuple[int, int], int]:
        """Overlap size for every pair of maximal cliques sharing >= 1 node.

        Keys are (i, j) with i < j.  Computed lazily and cached: the
        co-occurrence count of a clique pair across the inverted index
        *is* their overlap, so one pass over the index suffices.
        """
        if self._overlaps is None:
            with self.tracer.span("cpm.overlap") as span:
                counter: Counter[tuple[int, int]] = Counter()
                for cids in self.node_index().values():
                    for a in range(len(cids)):
                        ca = cids[a]
                        for b in range(a + 1, len(cids)):
                            counter[(ca, cids[b])] += 1
                self._overlaps = dict(counter)
                span.set("pairs", len(self._overlaps))
                self.metrics.inc("overlap.pairs", len(self._overlaps))
        return self._overlaps

    def percolate_groups(self, k: int) -> list[list[int]]:
        """Clique-id groups of every k-clique community.

        Union-find over maximal cliques of size >= k, merging pairs
        with overlap >= k-1.  Because cliques are stored sorted by size
        descending, eligibility is a prefix test.  The returned groups
        carry the percolation provenance needed to resolve community
        parents exactly (see :func:`build_hierarchy`).
        """
        if k < 2:
            raise ValueError(f"k must be >= 2, got {k}")
        eligible_count = self._eligible_count(k)
        if eligible_count == 0:
            return []
        overlaps = self.overlaps()
        with self.tracer.span("cpm.percolate.order", k=k, eligible=eligible_count):
            uf = UnionFind(range(eligible_count))
            for (i, j), overlap in overlaps.items():
                if overlap >= k - 1 and i < eligible_count and j < eligible_count:
                    uf.union(i, j)
            groups = [sorted(group) for group in uf.groups()]
        self.metrics.inc("percolate.union_merges", eligible_count - len(groups))
        return groups

    def percolate(self, k: int) -> list[frozenset]:
        """Member sets of every k-clique community, unsorted."""
        return [
            frozenset(node for cid in group for node in self.cliques[cid])
            for group in self.percolate_groups(k)
        ]

    def _eligible_count(self, k: int) -> int:
        """Number of cliques with size >= k (a prefix, sizes are sorted)."""
        lo, hi = 0, len(self.sizes)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.sizes[mid] >= k:
                lo = mid + 1
            else:
                hi = mid
        return lo


def k_clique_communities(graph: Graph, k: int) -> CommunityCover:
    """The k-clique communities of ``graph`` at order ``k``.

    >>> from repro.graph import ring_of_cliques
    >>> cover = k_clique_communities(ring_of_cliques(4, 5), 5)
    >>> len(cover), cover[0].size
    (4, 5)
    """
    index = CliqueOverlapIndex.from_graph(graph)
    return CommunityCover(k, index.percolate(k))


def build_hierarchy(
    cliques: Sequence[frozenset],
    groups_by_k: dict[int, list[list[int]]],
    *,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> CommunityHierarchy:
    """Assemble a hierarchy (with exact parent links) from clique groups.

    ``groups_by_k`` maps each order k to its percolation groups (lists
    of clique ids into ``cliques``).  The structural parent of a
    community is resolved through provenance: any clique eligible at
    order k is also eligible at k-1, so the (k-1)-group containing one
    representative clique id *is* the parent — this is the uniqueness
    construction of the paper's Theorem 1, and it is immune to the
    ambiguity of node-set containment between overlapping communities.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    covers: dict[int, CommunityCover] = {}
    parent_labels: dict[str, str] = {}
    previous_membership: dict[int, str] = {}
    with tracer.span("hierarchy.build", orders=len(groups_by_k)) as span:
        for k in sorted(groups_by_k):
            groups = groups_by_k[k]
            member_sets = []
            for group in groups:
                members: set = set()
                for cid in group:
                    members.update(cliques[cid])
                member_sets.append(frozenset(members))
            # Rank groups exactly as CommunityCover will, so that group
            # positions map onto community indices (rank_member_sets is
            # stable, so even duplicate member sets stay aligned).
            ranked = rank_member_sets(member_sets)
            covers[k] = CommunityCover(k, member_sets)
            membership: dict[int, str] = {}
            for community_index, group_position in enumerate(ranked):
                label = f"k{k}id{community_index}"
                for cid in groups[group_position]:
                    membership[cid] = label
                if previous_membership:
                    representative = groups[group_position][0]
                    parent_labels[label] = previous_membership[representative]
            previous_membership = membership
        hierarchy = CommunityHierarchy(covers, parent_labels=parent_labels)
        span.set("communities", hierarchy.total_communities)
    if metrics is not None:
        metrics.inc("hierarchy.communities", hierarchy.total_communities)
        metrics.set_gauge("hierarchy.max_order", hierarchy.max_k)
    return hierarchy


def extract_hierarchy(
    graph: Graph,
    *,
    min_k: int = 2,
    max_k: int | None = None,
    index: CliqueOverlapIndex | None = None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> CommunityHierarchy:
    """All k-clique communities for every order in ``[min_k, max_k]``.

    ``max_k`` defaults to the clique number of the graph (the highest
    order with any community).  An existing :class:`CliqueOverlapIndex`
    may be supplied to share the enumeration/overlap work.  The result
    carries exact parent provenance (``hierarchy.parent_labels``).
    ``tracer``/``metrics`` instrument the run like the parallel
    extractor does (``docs/observability.md``).
    """
    if index is None:
        index = CliqueOverlapIndex.from_graph(graph, tracer=tracer, metrics=metrics)
    top = index.max_clique_size if max_k is None else min(max_k, index.max_clique_size)
    if min_k < 2:
        raise ValueError(f"min_k must be >= 2, got {min_k}")
    if top < min_k:
        raise ValueError(f"graph has no clique of size >= {min_k}; nothing to extract")
    groups_by_k = {k: index.percolate_groups(k) for k in range(min_k, top + 1)}
    return build_hierarchy(index.cliques, groups_by_k, tracer=tracer, metrics=metrics)


def k_clique_communities_direct(graph: Graph, k: int) -> CommunityCover:
    """Executable specification: percolate raw k-cliques.

    Enumerate every k-clique, join pairs sharing exactly k-1 nodes, and
    union each connected chain.  Adjacency is found by hashing each
    clique's (k-1)-subsets, so the pair scan is linear in the number of
    (clique, facet) incidences rather than quadratic in cliques.
    Intended for small graphs (tests, documentation); use
    :func:`k_clique_communities` for real workloads.
    """
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    cliques = list(k_cliques(graph, k))
    if not cliques:
        return CommunityCover(k, [])
    uf = UnionFind(range(len(cliques)))
    by_facet: dict[frozenset, int] = {}
    for cid, clique in enumerate(cliques):
        for node in clique:
            facet = clique - {node}
            anchor = by_facet.setdefault(facet, cid)
            if anchor != cid:
                # All cliques sharing a facet are mutually adjacent, so
                # chaining each to the first is enough for percolation.
                uf.union(anchor, cid)
    member_sets = [
        frozenset(node for cid in group for node in cliques[cid]) for group in uf.groups()
    ]
    return CommunityCover(k, member_sets)
