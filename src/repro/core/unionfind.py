"""Disjoint-set forests (union-find).

The percolation step of CPM is connected components over the k-clique
adjacency graph; union-find gives near-linear merging of clique
adjacencies without materialising that (potentially huge) graph.
Both structures implement path halving and union by size:

* :class:`UnionFind` — over arbitrary hashable items, dict-backed.
  The reference structure used by the set-based kernel and the
  sequential oracle.
* :class:`IntUnionFind` — over a fixed range ``[0, n)``, list-backed.
  The integer fast path: no hashing, and :meth:`IntUnionFind.union_packed`
  merges a whole packed pair buffer in one call so the hot loop stays
  inside a single frame.  ``groups()`` orders identically to
  :meth:`UnionFind.groups` for range-initialised inputs, which the
  cross-kernel equivalence tests rely on.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence

__all__ = ["UnionFind", "IntUnionFind"]


class UnionFind:
    """Union-find over arbitrary hashable items.

    >>> uf = UnionFind()
    >>> uf.union('a', 'b')
    True
    >>> uf.union('b', 'c')
    True
    >>> uf.connected('a', 'c')
    True
    >>> uf.union('a', 'c')   # already merged
    False
    """

    __slots__ = ("_parent", "_size")

    def __init__(self, items: Iterable[Hashable] | None = None) -> None:
        self._parent: dict[Hashable, Hashable] = {}
        self._size: dict[Hashable, int] = {}
        if items is not None:
            for item in items:
                self.add(item)

    def add(self, item: Hashable) -> None:
        """Register ``item`` as a singleton set if unseen."""
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def __contains__(self, item: Hashable) -> bool:
        return item in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def find(self, item: Hashable) -> Hashable:
        """Representative of ``item``'s set (auto-registers unseen items)."""
        self.add(item)
        parent = self._parent
        root = item
        while parent[root] != root:
            parent[root] = parent[parent[root]]  # path halving
            root = parent[root]
        return root

    def union(self, a: Hashable, b: Hashable) -> bool:
        """Merge the sets of ``a`` and ``b``; True iff they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return True

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """True iff ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def set_size(self, item: Hashable) -> int:
        """Size of the set containing ``item``."""
        return self._size[self.find(item)]

    def groups(self) -> list[set[Hashable]]:
        """All disjoint sets, largest first."""
        by_root: dict[Hashable, set[Hashable]] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), set()).add(item)
        return sorted(by_root.values(), key=len, reverse=True)


class IntUnionFind:
    """Union-find over the dense integer range ``[0, n)``.

    Parents and set sizes live in plain lists indexed by element, so
    ``find`` is two list reads per hop with no hashing.  Semantics match
    :class:`UnionFind` initialised with ``range(n)``: same union-by-size
    tie handling, and ``groups()`` returns the same partition in the
    same order (largest first; equal sizes by smallest member, because
    members are scanned ascending and Python's sort is stable).

    >>> uf = IntUnionFind(4)
    >>> uf.union(0, 2), uf.union(2, 0)
    (True, False)
    >>> uf.groups()
    [[0, 2], [1], [3]]
    """

    __slots__ = ("_parent", "_size", "n")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        self.n = n
        self._parent = list(range(n))
        self._size = [1] * n

    def __len__(self) -> int:
        return self.n

    def find(self, x: int) -> int:
        """Representative of ``x``'s set (path halving)."""
        parent = self._parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; True iff they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        size = self._size
        if size[ra] < size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        size[ra] += size[rb]
        return True

    def union_packed(self, packed, shift: int) -> int:
        """Merge every pair of a packed buffer; return the merge count.

        ``packed`` is any iterable of words encoding a pair as
        ``(i << shift) | j`` — in practice an ``array('q')`` rebuilt
        from the bytes the overlap phase ships to percolation workers.
        The whole buffer is processed inside this one frame (finds
        inlined, locals only), which is what makes percolation over
        hundreds of thousands of pairs cheap in pure Python.
        """
        parent = self._parent
        size = self._size
        mask = (1 << shift) - 1
        merges = 0
        for word in packed:
            i = word >> shift
            j = word & mask
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            while parent[j] != j:
                parent[j] = parent[parent[j]]
                j = parent[j]
            if i == j:
                continue
            if size[i] < size[j]:
                i, j = j, i
            parent[j] = i
            size[i] += size[j]
            merges += 1
        return merges

    def connected(self, a: int, b: int) -> bool:
        """True iff ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def set_size(self, item: int) -> int:
        """Size of the set containing ``item``."""
        return self._size[self.find(item)]

    def groups(self, limit: int | None = None) -> list[list[int]]:
        """Disjoint sets over ``[0, limit)``, largest first, members ascending.

        ``limit`` restricts the snapshot to a prefix of the range: the
        incremental percolation pass keeps one structure over all
        cliques and snapshots only the cliques eligible at the current
        order (a prefix, because cliques are sorted by size descending).
        """
        n = self.n if limit is None else limit
        by_root: dict[int, list[int]] = {}
        for i in range(n):
            by_root.setdefault(self.find(i), []).append(i)
        return sorted(by_root.values(), key=len, reverse=True)

    def groups_of(self, members: Sequence[int]) -> list[list[int]]:
        """Disjoint sets restricted to an explicit member list.

        The eligibility companion to :meth:`groups` for callers whose
        element ids are *not* laid out size-descending — the incremental
        session assigns cliques stable ids for life, so the cliques
        eligible at an order are an arbitrary subset, not a prefix.
        Members keep the order given within each group; groups come
        largest first (ties by first listed member, like
        :meth:`groups`).
        """
        by_root: dict[int, list[int]] = {}
        for i in members:
            by_root.setdefault(self.find(i), []).append(i)
        return sorted(by_root.values(), key=len, reverse=True)
