"""IXP-driven communities: the crown of the Internet (Section 4.1).

Walks the densest part of the community tree and interprets it with the
IXP dataset, like the paper's 34-clique case study: which IXP does each
crown community live at, which communities are entire subsets of one
IXP's participants, and how the big three European IXPs overlap.

Run:  python examples/ixp_communities.py
"""

from repro import AnalysisContext, generate_topology
from repro.analysis import IXPShareAnalysis, derive_bands


def main() -> None:
    dataset = generate_topology(seed=42)
    print(f"dataset: {dataset!r}\n")
    context = AnalysisContext.from_dataset(dataset)
    share = IXPShareAnalysis(context)
    bands = derive_bands(share)
    hierarchy = context.hierarchy
    tree = context.tree

    print(f"crown band: k >= {bands.crown_min} (derived from full-share regimes)\n")

    # Walk the crown orders, paper-style.
    for k in range(bands.crown_min, hierarchy.max_k + 1):
        print(f"k = {k}: {len(hierarchy[k])} communities")
        for community in hierarchy[k]:
            record = share.record(community.label)
            role = "MAIN" if tree.is_main(community) else "parallel"
            full = f", full-share of {record.full_share_ixps[0]}" if record.full_share_ixps else ""
            print(
                f"  {community.label} [{role}] size {community.size}: "
                f"max-share {record.max_share_ixp} "
                f"({record.max_share_fraction:.0%}){full}"
            )
    print()

    # The overlap between crown communities comes from shared IXP
    # participants (paper: AMS-IX/DE-CIX/LINX share 119 ASes).
    registry = dataset.ixps
    big_three = ["AMS-IX", "DE-CIX", "LINX"]
    shared = set.intersection(*(set(registry[n].participants) for n in big_three))
    print(f"ASes participating in all of {big_three}: {len(shared)}")

    case_k = hierarchy.max_k - 2
    communities = list(hierarchy[case_k])
    if len(communities) >= 2:
        a, b = communities[0], communities[1]
        print(
            f"overlap fraction between {a.label} and {b.label}: "
            f"{a.overlap_fraction(b):.2f} "
            f"({a.overlap(b)} shared ASes — the shared carrier pool)"
        )

    # The apex community: the densest zone of the whole Internet.
    apex = tree.apex.community
    record = share.record(apex.label)
    print(
        f"\napex {apex.label}: {apex.size} ASes, "
        f"{record.on_ixp_fraction:.0%} on-IXP, "
        f"max-share {record.max_share_ixp} at {record.max_share_fraction:.0%} "
        "(paper: 38 ASes, 89% shared with AMS-IX)"
    )
    exceptions = [a for a in apex.members if not registry.is_on_ixp(a)]
    print(f"apex members in no IXP: {[dataset.name_of(a) for a in exceptions]}")


if __name__ == "__main__":
    main()
