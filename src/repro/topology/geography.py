"""Geographical dataset (Section 2.3).

The paper associates each AS with the list of countries where it has at
least one point of presence (MaxMind GeoLite, April 2010; 34,190 ASes
geolocated).  We reproduce the same *shape* of data offline: a
:class:`GeoRegistry` mapping AS numbers to country sets, a static
country→continent table, and the derived tags of Section 2.4:

* **national** — all locations in one country;
* **continental** — more than one country, all in one continent;
* **worldwide** — locations in at least two continents;
* **unknown** — AS absent from the registry (mostly low-degree stubs).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from enum import Enum

__all__ = ["Continent", "GeoTag", "GeoRegistry", "COUNTRY_CONTINENT", "continent_of"]


class Continent(str, Enum):
    EUROPE = "EU"
    NORTH_AMERICA = "NA"
    SOUTH_AMERICA = "SA"
    ASIA = "AS"
    AFRICA = "AF"
    OCEANIA = "OC"


class GeoTag(str, Enum):
    """The geographic tag categories of Table 2.2."""

    NATIONAL = "national"
    CONTINENTAL = "continental"
    WORLDWIDE = "worldwide"
    UNKNOWN = "unknown"


#: ISO-3166-style country code -> continent.  Covers the countries the
#: paper's analysis names (IXP host countries of Sections 4.1-4.3) plus
#: enough others for realistic synthetic topologies.
COUNTRY_CONTINENT: dict[str, Continent] = {
    # Europe
    "NL": Continent.EUROPE, "DE": Continent.EUROPE, "GB": Continent.EUROPE,
    "FR": Continent.EUROPE, "IT": Continent.EUROPE, "ES": Continent.EUROPE,
    "CH": Continent.EUROPE, "AT": Continent.EUROPE, "SE": Continent.EUROPE,
    "NO": Continent.EUROPE, "DK": Continent.EUROPE, "FI": Continent.EUROPE,
    "PL": Continent.EUROPE, "CZ": Continent.EUROPE, "SK": Continent.EUROPE,
    "HU": Continent.EUROPE, "RO": Continent.EUROPE, "BG": Continent.EUROPE,
    "GR": Continent.EUROPE, "PT": Continent.EUROPE, "IE": Continent.EUROPE,
    "BE": Continent.EUROPE, "LU": Continent.EUROPE, "UA": Continent.EUROPE,
    "RU": Continent.EUROPE,  # paper treats RU IXPs (MSK-IX, SPB-IX, KhIX) as European-side
    "TR": Continent.EUROPE, "RS": Continent.EUROPE, "HR": Continent.EUROPE,
    "SI": Continent.EUROPE, "EE": Continent.EUROPE, "LV": Continent.EUROPE,
    "LT": Continent.EUROPE, "IS": Continent.EUROPE,
    # North America
    "US": Continent.NORTH_AMERICA, "CA": Continent.NORTH_AMERICA,
    "MX": Continent.NORTH_AMERICA, "PA": Continent.NORTH_AMERICA,
    # South America
    "BR": Continent.SOUTH_AMERICA, "AR": Continent.SOUTH_AMERICA,
    "CL": Continent.SOUTH_AMERICA, "CO": Continent.SOUTH_AMERICA,
    "PE": Continent.SOUTH_AMERICA, "EC": Continent.SOUTH_AMERICA,
    # Asia
    "JP": Continent.ASIA, "CN": Continent.ASIA, "KR": Continent.ASIA,
    "IN": Continent.ASIA, "SG": Continent.ASIA, "HK": Continent.ASIA,
    "TW": Continent.ASIA, "TH": Continent.ASIA, "MY": Continent.ASIA,
    "ID": Continent.ASIA, "PH": Continent.ASIA, "VN": Continent.ASIA,
    "IL": Continent.ASIA, "AE": Continent.ASIA, "SA": Continent.ASIA,
    "PK": Continent.ASIA, "BD": Continent.ASIA,
    # Africa
    "ZA": Continent.AFRICA, "EG": Continent.AFRICA, "NG": Continent.AFRICA,
    "KE": Continent.AFRICA, "MA": Continent.AFRICA, "TN": Continent.AFRICA,
    "GH": Continent.AFRICA, "AO": Continent.AFRICA,
    # Oceania
    "AU": Continent.OCEANIA, "NZ": Continent.OCEANIA, "FJ": Continent.OCEANIA,
}


def continent_of(country: str) -> Continent:
    """The continent of a country code; raises ``KeyError`` if unknown."""
    return COUNTRY_CONTINENT[country]


class GeoRegistry:
    """AS -> set of country codes with at least one point of presence.

    ASes not present are *unknown* (Section 2.4: mostly low-degree stub
    ASes whose geolocation was not discovered).
    """

    def __init__(self, locations: Mapping[int, Iterable[str]] | None = None) -> None:
        self._countries: dict[int, frozenset[str]] = {}
        if locations:
            for asn, countries in locations.items():
                self.assign(asn, countries)

    def assign(self, asn: int, countries: Iterable[str]) -> None:
        """Record the country presence list of ``asn`` (replacing any prior)."""
        country_set = frozenset(countries)
        for code in country_set:
            if code not in COUNTRY_CONTINENT:
                raise KeyError(f"unknown country code {code!r} for AS{asn}")
        if not country_set:
            raise ValueError(f"AS{asn}: empty country list; omit the AS instead")
        self._countries[asn] = country_set

    def __contains__(self, asn: int) -> bool:
        return asn in self._countries

    def __len__(self) -> int:
        return len(self._countries)

    def __iter__(self) -> Iterator[int]:
        return iter(self._countries)

    def countries(self, asn: int) -> frozenset[str]:
        """Country presence of ``asn``; empty frozenset when unknown."""
        return self._countries.get(asn, frozenset())

    def continents(self, asn: int) -> frozenset[Continent]:
        """The continents covered by ``asn``'s country presence."""
        return frozenset(COUNTRY_CONTINENT[c] for c in self.countries(asn))

    def tag(self, asn: int) -> GeoTag:
        """The Section 2.4 geographic tag of ``asn``."""
        countries = self.countries(asn)
        if not countries:
            return GeoTag.UNKNOWN
        if len(countries) == 1:
            return GeoTag.NATIONAL
        if len(self.continents(asn)) == 1:
            return GeoTag.CONTINENTAL
        return GeoTag.WORLDWIDE

    def ases_in_country(self, country: str) -> set[int]:
        """All registered ASes with a presence in ``country``.

        The node set of the country-induced subgraph [24] used in the
        root-community analysis (Section 4.3).
        """
        return {asn for asn, countries in self._countries.items() if country in countries}

    def all_countries(self) -> set[str]:
        """Every country appearing in the registry."""
        return {c for countries in self._countries.values() for c in countries}

    # ------------------------------------------------------------------
    # Serialisation (TSV: asn <tab> comma-separated country codes)
    # ------------------------------------------------------------------
    def to_tsv(self) -> str:
        """Serialise as 'asn<TAB>countries' lines."""
        lines = [
            f"{asn}\t{','.join(sorted(countries))}"
            for asn, countries in sorted(self._countries.items())
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    @classmethod
    def from_tsv(cls, text: str) -> "GeoRegistry":
        registry = cls()
        for raw in text.splitlines():
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            asn_part, countries_part = line.split("\t")
            registry.assign(int(asn_part), countries_part.split(","))
        return registry

    def __repr__(self) -> str:
        return f"GeoRegistry(ases={len(self)}, countries={len(self.all_countries())})"
