"""Shared analysis context.

Every experiment in Chapter 4 consumes the same three artefacts: the
dataset bundle, the full k-clique community hierarchy, and the
community tree.  :class:`AnalysisContext` computes them once (CPM is
the expensive step) and hands them to the per-figure analyses, so a
full paper run costs one extraction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.cache import CliqueCache
from ..core.communities import Community, CommunityHierarchy
from ..core.lightweight import CPMRunStats
from ..core.tree import CommunityTree
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import Tracer
from ..runner import CheckpointStore, FaultPlan, RunnerConfig
from ..topology.dataset import ASDataset

__all__ = ["AnalysisContext"]


@dataclass
class AnalysisContext:
    """Dataset + hierarchy + tree, the inputs of every Chapter 4 analysis."""

    dataset: ASDataset
    hierarchy: CommunityHierarchy
    tree: CommunityTree
    cpm_stats: CPMRunStats | None = None

    @classmethod
    def from_dataset(
        cls,
        dataset: ASDataset,
        *,
        workers: int = 1,
        kernel: str = "bitset",
        cache: CliqueCache | None = None,
        checkpoint: CheckpointStore | None = None,
        resume: bool = False,
        runner: RunnerConfig | None = None,
        fault_plan: FaultPlan | None = None,
        min_k: int = 2,
        max_k: int | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> "AnalysisContext":
        """Run LP-CPM on the dataset and build the community tree.

        Extraction goes through :func:`repro.api.run_cpm`, so every
        facade option is available here: ``kernel``/``cache`` select
        the CPM kernel and an optional on-disk clique cache
        (``docs/performance.md``); ``checkpoint``/``resume``/
        ``runner``/``fault_plan`` enable the resilient-runner features
        (``docs/robustness.md``).  ``tracer``/``metrics`` are threaded
        through the extraction and the tree build, so one instrumented
        context captures the whole pipeline
        (``docs/observability.md``).
        """
        from ..api import run_cpm

        result = run_cpm(
            dataset.graph,
            k_range=(min_k, max_k),
            workers=workers,
            kernel=kernel,
            cache=cache,
            checkpoint=checkpoint,
            resume=resume,
            runner=runner,
            fault_plan=fault_plan,
            tracer=tracer,
            metrics=metrics,
        )
        return cls(
            dataset=dataset,
            hierarchy=result.hierarchy,
            tree=CommunityTree(result.hierarchy, tracer=tracer, metrics=metrics),
            cpm_stats=result.stats,
        )

    def is_main(self, community: Community) -> bool:
        """True iff ``community`` lies on the main chain of the tree."""
        return self.tree.is_main(community)

    @property
    def graph(self):
        return self.dataset.graph
