"""Tests for the stable programmatic facade (repro.api)."""

import json

import pytest

import repro
from repro.api import CPMResult, load_result, run_cpm, save_result
from repro.core.lightweight import LightweightParallelCPM
from repro.core.serialize import hierarchy_to_dict, load_hierarchy, save_hierarchy
from repro.graph import ring_of_cliques
from repro.runner import CheckpointStore


@pytest.fixture(scope="module")
def graph():
    return ring_of_cliques(4, 5)


@pytest.fixture(scope="module")
def result(graph):
    return run_cpm(graph)


class TestRunCpm:
    def test_matches_direct_engine_run(self, graph, result):
        direct = LightweightParallelCPM(graph).run()
        assert hierarchy_to_dict(result.hierarchy) == hierarchy_to_dict(direct)

    def test_k_range_tuple(self, graph):
        windowed = run_cpm(graph, k_range=(3, 4))
        assert windowed.orders == [3, 4]

    def test_k_range_bare_int_extracts_single_order(self, graph):
        single = run_cpm(graph, k_range=4)
        assert single.orders == [4]

    def test_result_indexing_delegates_to_hierarchy(self, result):
        assert 4 in result
        assert len(result[4]) == 4  # the four pentagon cliques
        assert 99 not in result

    def test_stats_populated(self, result):
        assert result.stats.n_cliques >= 4
        assert result.stats.kernel == "bitset"
        assert result.degraded is False

    def test_kernel_validation(self, graph):
        with pytest.raises(ValueError, match="kernel"):
            run_cpm(graph, kernel="bogus")

    def test_set_kernel_equivalent(self, graph, result):
        set_result = run_cpm(graph, kernel="set")
        assert hierarchy_to_dict(set_result.hierarchy) == hierarchy_to_dict(result.hierarchy)

    def test_checkpoint_accepts_path(self, graph, tmp_path, result):
        ckpt_dir = tmp_path / "ckpt"
        checkpointed = run_cpm(graph, checkpoint=ckpt_dir)
        assert hierarchy_to_dict(checkpointed.hierarchy) == hierarchy_to_dict(result.hierarchy)
        assert CheckpointStore(ckpt_dir).has_phase("percolate")

    def test_cache_accepts_path(self, graph, tmp_path, result):
        cached = run_cpm(graph, cache=tmp_path / "cache")
        again = run_cpm(graph, cache=tmp_path / "cache")
        assert again.stats.cache_hit
        assert hierarchy_to_dict(again.hierarchy) == hierarchy_to_dict(cached.hierarchy)


class TestRemovedSpellings:
    """The pre-facade keyword shims are gone: plain TypeError now."""

    @pytest.mark.parametrize("kwargs", [
        {"min_k": 3},
        {"max_k": 4},
        {"n_workers": 2},
        {"use_cache": True},
        {"granularity": 3},
    ])
    def test_removed_kwarg_is_a_type_error(self, graph, kwargs):
        with pytest.raises(TypeError, match="unexpected keyword"):
            run_cpm(graph, **kwargs)

    def test_replacement_spellings_work(self, graph):
        result = run_cpm(graph, k_range=(3, 4), workers=1)
        assert result.orders == [3, 4]
        assert result.stats.workers == 1


class TestResultPersistence:
    def test_round_trip(self, result, tmp_path):
        path = tmp_path / "result.json"
        save_result(result, path)
        loaded = load_result(path)
        assert hierarchy_to_dict(loaded.hierarchy) == hierarchy_to_dict(result.hierarchy)
        assert loaded.stats.n_cliques == result.stats.n_cliques
        assert loaded.stats.kernel == result.stats.kernel
        assert loaded.stats.size_histogram == result.stats.size_histogram
        assert loaded.stats.resumed_phases == result.stats.resumed_phases

    def test_file_loads_with_legacy_loader(self, result, tmp_path):
        """save_result files are a superset of the save_hierarchy format."""
        path = tmp_path / "result.json"
        save_result(result, path)
        legacy = load_hierarchy(path)
        assert hierarchy_to_dict(legacy) == hierarchy_to_dict(result.hierarchy)

    def test_legacy_file_loads_with_default_stats(self, result, tmp_path):
        path = tmp_path / "legacy.json"
        save_hierarchy(result.hierarchy, path)
        loaded = load_result(path)
        assert hierarchy_to_dict(loaded.hierarchy) == hierarchy_to_dict(result.hierarchy)
        assert loaded.stats.n_cliques == 0  # defaults: no stats block

    def test_stats_block_is_json(self, result, tmp_path):
        path = tmp_path / "result.json"
        save_result(result, path)
        document = json.loads(path.read_text(encoding="utf-8"))
        assert document["stats"]["kernel"] == "bitset"

    def test_to_dict_is_versioned(self, result):
        from repro.api import RESULT_SCHEMA_VERSION

        document = result.to_dict()
        assert document["result_schema"] == RESULT_SCHEMA_VERSION
        rebuilt = CPMResult.from_dict(document)
        assert hierarchy_to_dict(rebuilt.hierarchy) == hierarchy_to_dict(result.hierarchy)
        assert rebuilt.stats == result.stats

    def test_pre_versioning_document_still_loads(self, result):
        document = result.to_dict()
        del document["result_schema"]
        rebuilt = CPMResult.from_dict(document)
        assert rebuilt.stats.n_cliques == result.stats.n_cliques

    def test_future_schema_is_rejected(self, result, tmp_path):
        document = result.to_dict()
        document["result_schema"] = 999
        with pytest.raises(ValueError, match="schema 999"):
            CPMResult.from_dict(document)
        path = tmp_path / "future.json"
        path.write_text(json.dumps(document), encoding="utf-8")
        with pytest.raises(ValueError, match="upgrade repro"):
            load_result(path)


class TestTopLevelExports:
    def test_facade_names_exported(self):
        assert repro.run_cpm is run_cpm
        assert repro.CPMResult is CPMResult
        assert repro.save_result is save_result
        assert repro.load_result is load_result
        for name in ("run_cpm", "CPMResult", "save_result", "load_result"):
            assert name in repro.__all__
