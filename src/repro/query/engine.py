"""Point lookups over a :class:`~repro.query.artifact.QueryArtifact`.

A :class:`LookupEngine` answers the questions the paper's hierarchy
exists to answer — without touching CPM, the analysis engine, or the
source graph:

* :meth:`memberships` — which communities contain AS X, per order
  (the node's full position in the community tree);
* :meth:`band` — the crown/trunk/root band of AS X (the band of the
  highest order at which X still belongs to a community);
* :meth:`lowest_common` — the lowest common community of X and Y: the
  deepest (maximum-k) community containing both, i.e. their meet in
  the containment tree;
* :meth:`top` — the top-N communities by link density, average ODF or
  size, optionally restricted to one order;
* :meth:`community` — one community's stored record (and, on request,
  its member list expanded from the packed bitset).

Everything reads from the artifact's postings/index sections — a
membership query is one offset subtraction and a contiguous slice;
community bitsets are only touched when a caller asks for member
expansion.  Each call runs inside a ``query.lookup`` span (attribute
``op``) and bumps the ``query.lookups`` / ``query.lookup.<op>``
counters, so a served artifact's traffic shows up in the standard
``repro.obs`` artifacts.
"""

from __future__ import annotations

from ..obs.metrics import MetricsRegistry
from ..obs.tracing import NULL_TRACER, Tracer
from .artifact import QueryArtifact

__all__ = ["LookupEngine", "TOP_METRICS"]

#: Metrics :meth:`LookupEngine.top` can rank by.
TOP_METRICS = ("density", "odf", "size")


class LookupEngine:
    """Query front-end over one loaded artifact."""

    def __init__(
        self,
        artifact: QueryArtifact,
        *,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.artifact = artifact
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    def with_observability(
        self,
        *,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> "LookupEngine":
        """A clone over the same artifact with different telemetry sinks.

        Construction is three attribute assignments — cheap enough
        that the query server builds one per *request*, giving each
        handler thread a private tracer (span stacks don't survive
        sharing) while the thread-safe registry stays shared.
        """
        return LookupEngine(
            self.artifact,
            tracer=tracer if tracer is not None else self.tracer,
            metrics=metrics if metrics is not None else self.metrics,
        )

    def _count(self, op: str) -> None:
        self.metrics.inc("query.lookups")
        self.metrics.inc(f"query.lookup.{op}")

    def _node_id(self, node) -> int:
        artifact = self.artifact
        try:
            return artifact.node_id(node)
        except KeyError:
            raise KeyError(f"unknown AS {node!r} (not in any community)") from None

    # ------------------------------------------------------------------
    # Point queries
    # ------------------------------------------------------------------
    def memberships(self, node) -> dict[int, list[str]]:
        """Order k -> labels of the communities containing ``node``.

        Same shape and ordering as
        :meth:`~repro.core.communities.CommunityHierarchy.membership_of`.
        """
        with self.tracer.span("query.lookup", op="membership"):
            self._count("membership")
            artifact = self.artifact
            node_id = self._node_id(node)
            out: dict[int, list[str]] = {}
            for ordinal in artifact.postings_of(node_id):
                out.setdefault(artifact._ks[ordinal], []).append(artifact.label(ordinal))
            return out

    def band(self, node) -> dict:
        """The crown/trunk/root position of ``node``.

        The band is that of the *highest* order at which the node still
        belongs to a community — the deepest layer of the tree it
        reaches (Sections 4.1-4.3 classify ASes exactly this way).
        """
        with self.tracer.span("query.lookup", op="band"):
            self._count("band")
            artifact = self.artifact
            node_id = self._node_id(node)
            ordinals = artifact.postings_of(node_id)
            if not len(ordinals):
                return {"as": node, "band": None, "max_k": None}
            deepest = ordinals[-1]  # postings ascend in (k, index)
            max_k = artifact._ks[deepest]
            return {
                "as": node,
                "band": artifact.bands.band_of(max_k),
                "max_k": max_k,
                "deepest_community": artifact.label(deepest),
            }

    def lowest_common(self, a, b) -> dict | None:
        """The deepest community containing both ``a`` and ``b``.

        By the nesting theorem the communities containing a node form a
        chain of main/parallel memberships up the tree; the lowest
        common community is the maximum-k community both chains share
        (smallest index on ties — the largest community of that order).
        Returns ``None`` when the two ASes share no community.
        """
        with self.tracer.span("query.lookup", op="lca"):
            self._count("lca")
            artifact = self.artifact
            common = set(artifact.postings_of(self._node_id(a))) & set(
                artifact.postings_of(self._node_id(b))
            )
            if not common:
                return None
            ks = artifact._ks
            best = max(common, key=lambda o: (ks[o], -artifact._indices[o]))
            record = artifact.record(best)
            record["band"] = artifact.bands.band_of(record["k"])
            return record

    def top(self, metric: str = "density", n: int = 10, k: int | None = None) -> list[dict]:
        """The top ``n`` communities by ``metric``, optionally at order ``k``.

        ``metric`` is one of :data:`TOP_METRICS`; rankings were frozen
        at build time (descending value, ties by ``(k, index)``), so
        this is a slice of a precomputed table, not a sort.
        """
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        with self.tracer.span("query.lookup", op="top"):
            self._count("top")
            artifact = self.artifact
            ranked = artifact.top_ordinals(metric)
            out: list[dict] = []
            for ordinal in ranked:
                if k is not None and artifact._ks[ordinal] != k:
                    continue
                out.append(artifact.record(ordinal))
                if len(out) == n:
                    break
            return out

    def community(self, label: str, *, members: bool = False) -> dict:
        """One community's stored record; ``members=True`` expands the bitset."""
        with self.tracer.span("query.lookup", op="community"):
            self._count("community")
            artifact = self.artifact
            ordinal = artifact.ordinal(label)
            record = artifact.record(ordinal)
            record["band"] = artifact.bands.band_of(record["k"])
            if members:
                record["members"] = artifact.members(ordinal)
            return record

    def info(self) -> dict:
        """Artifact metadata: fingerprint, bands, orders, counts."""
        with self.tracer.span("query.lookup", op="info"):
            self._count("info")
            meta = self.artifact.meta
            return {
                "format": meta.get("format"),
                "version": meta.get("version"),
                "fingerprint": self.artifact.fingerprint,
                "bands": self.artifact.bands.to_dict(),
                "orders": self.artifact.orders,
                "n_nodes": self.artifact.n_nodes,
                "n_communities": self.artifact.n_communities,
            }
