"""Lightweight Parallel Clique Percolation Method (LP-CPM, [11]).

The paper's communities were extracted with the Lightweight Parallel
CPM of Gregori, Lenzini, Mainardi & Orsini — the only algorithm able to
process the 2.7M maximal cliques of the AS graph (93 hours on 48
cores).  The 'lightweight' idea is to never materialise the CFinder
all-pairs clique overlap matrix; the 'parallel' idea is that both the
overlap computation and the per-order percolation decompose into
independent shards.

This implementation reproduces that architecture with three kernels:

* ``kernel="bitset"`` (default) — the integer fast path.  The graph is
  snapshotted into a :class:`~repro.graph.csr.CSRGraph` (dense ids in
  degeneracy order), cliques come from the bitset Bron–Kerbosch, the
  overlap phase counts only cliques of size >= 3 (2-cliques cannot
  overlap anything by 2+ nodes) via C-speed ``Counter.update``, order-2
  connectivity is recovered by chaining each node's clique list, and
  percolation is one *incremental* :class:`~.unionfind.IntUnionFind`
  sweep per worker over pair buckets keyed by activation order (see
  :mod:`.overlap`).  Workers receive one packed ``bytes`` buffer via
  the pool initializer instead of a per-batch re-pickle.
* ``kernel="blocks"`` — the vectorized fast path (requires the
  ``[perf]`` numpy extra; see :mod:`.blocks`).  Same CSR snapshot and
  wire format as the bitset kernel, but clique enumeration resolves
  leaf subproblems inline, overlap counting is batched numpy array
  sweeps instead of sharded ``Counter`` updates, and the serial
  percolation sweep is min-label propagation.  ``--kernel auto``
  selects it when numpy is importable and degrades to ``bitset``
  otherwise (:func:`resolve_kernel`).
* ``kernel="set"`` — the original set-based pipeline, kept as the
  tested reference oracle: per-order independent union-find over the
  full (i, j, overlap) list.  All kernels produce bit-identical
  hierarchies (same covers, same parent labels), which
  ``tests/test_kernels_equivalence.py`` asserts three ways.

Phases (either kernel):

1. **Enumerate** maximal cliques (Bron–Kerbosch, sequential).
2. **Overlap phase** — the inverted node→cliques index is sharded
   across workers; each worker counts clique-pair co-occurrences over
   its shard of nodes, and shard counters are summed (a pair's total
   co-occurrence count across all nodes *is* its overlap).
3. **Percolation phase** — orders k are distributed across workers;
   union-find per order (set kernel) or one incremental descending
   sweep (bitset kernel).

``workers=1`` runs everything in-process (no pickling, fully
deterministic); ``workers>1`` uses ``ProcessPoolExecutor``.  Results
are identical by construction, which the test-suite asserts.

Passing a :class:`~.cache.CliqueCache` memoises the enumerate +
overlap phases on disk, keyed by the graph fingerprint: a second run
over the same graph goes straight to percolation (``cache.hits`` in
the metrics, ``cache="hit"`` on the ``cpm.run`` span).

Fault tolerance (:mod:`repro.runner`): passing a
:class:`~repro.runner.checkpoint.CheckpointStore` persists each
phase's output as it completes (and, during percolation, the
accumulated per-order groups), so a run interrupted by a crash —
of a worker or of the driver — restarts with ``resume=True`` from the
last completed phase and produces a hierarchy identical to an
uninterrupted run.  With ``workers > 1`` the process pools run under a
:class:`~repro.runner.supervise.PoolSupervisor`: per-round timeouts,
bounded exponential-backoff retry, pool resurrection after worker
death, and graceful degradation to serial in-driver execution when a
batch fails permanently (``runner.degraded`` gauge).  A
:class:`~repro.runner.faults.FaultPlan` (or ``$REPRO_FAULT_PLAN``)
injects deterministic worker/driver faults so those paths stay
testable; see ``docs/robustness.md``.

Every phase is observable: pass a :class:`repro.obs.Tracer` and a
:class:`repro.obs.MetricsRegistry` and the run emits nested spans
(wall/CPU/peak-memory per phase) plus counters and histograms —
including per-shard timings reported back from worker processes.  The
defaults (no-op tracer, private registry) add no measurable overhead.
"""

from __future__ import annotations

import time
from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass, field

from ..graph.csr import CSRGraph
from ..graph.undirected import Graph
from ..obs.manifest import graph_fingerprint
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import NULL_TRACER, Tracer, max_rss_kib
from ..obs.worker import current_metrics, worker_span
from ..runner.checkpoint import CheckpointStore
from ..runner.faults import FaultPlan
from ..runner.supervise import PoolSupervisor, RunnerConfig
from .cache import CliqueCache
from .cliques import (
    CliqueCensus,
    CliqueEnumerationStats,
    maximal_cliques,
    maximal_cliques_bitset,
)
from .communities import CommunityHierarchy
from .overlap import (
    OverlapWire,
    build_node_index,
    bucketize,
    chain_pairs,
    count_overlaps_shard,
    pack_triples,
    truncate_index,
    unpack_triples,
)
from .percolation import CliqueOverlapIndex, build_hierarchy, sweep_wire
from .unionfind import UnionFind

__all__ = ["LightweightParallelCPM", "CPMRunStats", "KERNELS", "resolve_kernel"]

KERNELS = ("bitset", "blocks", "set")


def resolve_kernel(kernel: str) -> str:
    """Resolve a kernel request (including ``"auto"``) to a KERNELS name.

    ``"auto"`` picks the fastest kernel the install supports: ``blocks``
    when numpy (the ``[perf]`` extra) is importable, else ``bitset`` —
    the documented degradation, so an ``auto`` run never fails on a
    minimal install.  Explicit names pass through after validation;
    requesting ``blocks`` without numpy raises
    :class:`~._blocks_compat.BlocksUnavailableError` (a ``ValueError``)
    here, before any phase starts.
    """
    if kernel == "auto":
        from ._blocks_compat import HAVE_NUMPY

        return "blocks" if HAVE_NUMPY else "bitset"
    if kernel not in KERNELS:
        raise ValueError(f"kernel must be one of {KERNELS} or 'auto', got {kernel!r}")
    if kernel == "blocks":
        from ._blocks_compat import require_numpy

        require_numpy("kernel 'blocks'")
    return kernel


@dataclass
class CPMRunStats:
    """Timing and census record of one LP-CPM run.

    Mirrors the run statistics the paper reports in Section 3: the
    maximal clique count, the dominant size band, and per-phase wall
    times.  (Full per-phase CPU/memory detail lives in the tracer's
    spans; this dataclass stays the cheap always-on summary.)
    """

    n_cliques: int = 0
    max_clique_size: int = 0
    n_overlap_pairs: int = 0
    enumerate_seconds: float = 0.0
    overlap_seconds: float = 0.0
    percolate_seconds: float = 0.0
    workers: int = 1
    kernel: str = "bitset"
    #: Resolved shard count (1 = the unsharded single-process pipeline).
    shards: int = 1
    cache_hit: bool = False
    size_histogram: dict[int, int] = field(default_factory=dict)
    #: Phases loaded from a checkpoint instead of recomputed.
    resumed_phases: tuple[str, ...] = ()
    #: True iff any batch exhausted its retries and ran via the serial
    #: fallback (see repro.runner.supervise).
    degraded: bool = False

    @property
    def total_seconds(self) -> float:
        """Sum of the three phase wall times."""
        return self.enumerate_seconds + self.overlap_seconds + self.percolate_seconds


def _count_pairs_shard(shard: list[list[int]]) -> tuple[Counter, dict]:
    """Worker: co-occurrence counts over one shard of the inverted index.

    Returns the pair counter plus a self-timed statistics dict — worker
    processes cannot share the parent's tracer, so each shard reports
    its own wall/CPU time, sizes and peak RSS back for aggregation.
    Under a supervised telemetry capture the shard additionally records
    a ``worker.overlap.count`` span and ``worker.overlap.*`` counters
    (a namespace disjoint from the stats-dict aggregation, so merged
    worker registries never double-count the ``overlap.*`` family).
    """
    t0, c0 = time.perf_counter(), time.process_time()
    with worker_span("worker.overlap.count", nodes=len(shard)) as span:
        counter: Counter[tuple[int, int]] = Counter()
        incidences = 0
        pair_updates = 0
        for cids in shard:
            n = len(cids)
            incidences += n
            pair_updates += n * (n - 1) // 2
            for a in range(n):
                ca = cids[a]
                for b in range(a + 1, n):
                    counter[(ca, cids[b])] += 1
        span.set("pairs", len(counter))
        registry = current_metrics()
        if registry is not None:
            registry.inc("worker.overlap.pair_updates", pair_updates)
            registry.inc("worker.overlap.distinct_pairs", len(counter))
            registry.observe("worker.overlap.shard_nodes", len(shard))
    stats = {
        "nodes": len(shard),
        "incidences": incidences,
        "pair_updates": pair_updates,
        "distinct_pairs": len(counter),
        "wall_seconds": time.perf_counter() - t0,
        "cpu_seconds": time.process_time() - c0,
        "max_rss_kib": max_rss_kib(),
    }
    return counter, stats


def _percolate_orders(
    orders: list[int],
    sizes: list[int],
    pairs: list[tuple[int, int, int]],
) -> tuple[dict[int, list[list[int]]], dict]:
    """Worker: percolate each order in ``orders`` independently.

    ``sizes`` is the clique-size list sorted descending; ``pairs`` is
    the (i, j, overlap) list.  Pairs below the batch's smallest
    threshold (``min(orders) - 1``) can never merge anything at any
    order of the batch, so they are filtered out once up front instead
    of being rescanned for every k; the skipped count is reported in
    the statistics dict alongside the batch's self-timed wall/CPU time.

    Returns, per order, groups of clique ids (node materialisation
    happens in the parent, which owns the actual clique sets — shipping
    only integer ids keeps the workers light), plus the statistics dict.
    """
    t0, c0 = time.perf_counter(), time.process_time()
    with worker_span(
        "worker.percolate.orders", orders=len(orders), pairs=len(pairs)
    ) as span:
        min_threshold = min(orders) - 1
        if min_threshold > 1:
            active = [p for p in pairs if p[2] >= min_threshold]
        else:
            active = pairs
        result: dict[int, list[list[int]]] = {}
        merges = 0
        for k in orders:
            eligible = _prefix_count(sizes, k)
            if eligible == 0:
                result[k] = []
                continue
            uf = UnionFind(range(eligible))
            threshold = k - 1
            for i, j, overlap in active:
                if overlap >= threshold and i < eligible and j < eligible:
                    uf.union(i, j)
            groups = [sorted(group) for group in uf.groups()]
            result[k] = groups
            merges += eligible - len(groups)
        span.set("union_merges", merges)
        registry = current_metrics()
        if registry is not None:
            registry.inc("worker.percolate.union_merges", merges)
            registry.inc("worker.percolate.orders_done", len(orders))
    stats = {
        "orders": len(orders),
        "pairs_in": len(pairs),
        "skipped_pairs": len(pairs) - len(active),
        "union_merges": merges,
        "wall_seconds": time.perf_counter() - t0,
        "cpu_seconds": time.process_time() - c0,
        "max_rss_kib": max_rss_kib(),
    }
    return result, stats


def _percolate_orders_packed(
    orders: list[int],
    eligibles: list[int],
    wire: OverlapWire,
) -> tuple[dict[int, list[list[int]]], dict]:
    """Worker: one incremental union-find sweep over a packed wire.

    ``orders`` must be strictly descending (``eligibles`` aligned, each
    the count of cliques of size >= that order).  A pair bucketed at
    activation order ``k_act`` is usable at every k <= k_act, so one
    :class:`IntUnionFind` serves the whole batch: walking orders
    downward, each bucket with ``k_act >= k`` is merged exactly once
    and groups are snapshotted over the eligible prefix.  At k = 2 the
    chain buffer is folded in (order-2 connectivity over *all* cliques,
    including the 2-cliques the counting phase excludes).

    Unions only ever touch cliques eligible at the current order: a
    bucket applied at k has ``sizes[j] >= k_act >= k`` for both ids, so
    prefix snapshots see exactly the components the per-order reference
    builds.
    """
    t0, c0 = time.perf_counter(), time.process_time()
    with worker_span(
        "worker.percolate.packed", orders=len(orders), cliques=wire.n_cliques
    ) as span:
        result, merges, applied = sweep_wire(orders, eligibles, wire)
        span.set("union_merges", merges)
        registry = current_metrics()
        if registry is not None:
            registry.inc("worker.percolate.union_merges", merges)
            registry.inc("worker.percolate.orders_done", len(orders))
    pairs_in = wire.n_pairs + wire.n_chain_pairs
    stats = {
        "orders": len(orders),
        "pairs_in": pairs_in,
        "skipped_pairs": max(0, pairs_in - applied),
        "union_merges": merges,
        "wall_seconds": time.perf_counter() - t0,
        "cpu_seconds": time.process_time() - c0,
        "max_rss_kib": max_rss_kib(),
    }
    return result, stats


# Shared payload installed once per worker process by the pool
# initializer — the fix for the old O(workers x pairs) fan-out, where
# every percolation batch re-pickled the full overlap list.
_POOL_SHARED: dict = {}


def _init_pool_shared(payload: dict) -> None:
    global _POOL_SHARED
    _POOL_SHARED = payload


def _percolate_batch_set(orders: list[int]) -> tuple[dict[int, list[list[int]]], dict]:
    """Worker: set-kernel batch against the process-shared triples."""
    shared = _POOL_SHARED
    pairs = shared.get("pairs")
    if pairs is None:
        pairs = shared["pairs"] = unpack_triples(shared["triples"])
    return _percolate_orders(orders, shared["sizes"], pairs)


def _percolate_batch_packed(
    task: tuple[list[int], list[int]],
) -> tuple[dict[int, list[list[int]]], dict]:
    """Worker: bitset-kernel batch against the process-shared wire."""
    orders, eligibles = task
    return _percolate_orders_packed(orders, eligibles, _POOL_SHARED["wire"])


def _prefix_count(sorted_desc: Sequence[int], k: int) -> int:
    """How many leading entries of a descending sequence are >= k."""
    lo, hi = 0, len(sorted_desc)
    while lo < hi:
        mid = (lo + hi) // 2
        if sorted_desc[mid] >= k:
            lo = mid + 1
        else:
            hi = mid
    return lo


class LightweightParallelCPM:
    """Extract the full k-clique community hierarchy of a graph.

    ``kernel`` selects the integer fast path (``"bitset"``, default),
    the numpy-vectorized fast path (``"blocks"``, needs the ``[perf]``
    extra), the set-based reference (``"set"``), or ``"auto"`` (blocks
    when numpy is importable, else bitset); all produce identical
    hierarchies.  ``shards`` (a count or ``"auto"``, one shard per
    worker) routes every phase through the partitioned pipeline of
    :mod:`repro.shard` — byte-identical output, built for graphs past
    the single-process scale.  ``cache`` (a
    :class:`~.cache.CliqueCache`) memoises enumeration + overlap on
    disk keyed by the graph fingerprint.
    ``tracer``/``metrics`` (both optional) switch on observability: the
    run then emits ``cpm.run`` → ``cpm.enumerate`` / ``cpm.overlap`` /
    ``cpm.percolate`` / ``cpm.hierarchy`` spans and populates the
    metric names documented in ``docs/observability.md``.

    >>> from repro.graph import ring_of_cliques
    >>> cpm = LightweightParallelCPM(ring_of_cliques(3, 4))
    >>> hierarchy = cpm.run()
    >>> len(hierarchy[4]), len(hierarchy[2])
    (3, 1)
    """

    def __init__(
        self,
        graph: Graph,
        *,
        workers: int = 1,
        kernel: str = "bitset",
        shards: int | str = 1,
        cache: CliqueCache | None = None,
        checkpoint: CheckpointStore | None = None,
        resume: bool = False,
        runner: RunnerConfig | None = None,
        fault_plan: FaultPlan | None = None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        kernel = resolve_kernel(kernel)
        from ..shard.plan import resolve_shards

        self.graph = graph
        self.workers = workers
        self.kernel = kernel
        #: Resolved shard count (``"auto"`` -> one shard per worker).
        #: ``shards > 1`` routes every phase through the sharded
        #: pipeline (:mod:`repro.shard`), which is byte-identical to
        #: the serial path but partitions data across workers.
        self.shards = resolve_shards(shards, workers)
        self.cache = cache
        self.checkpoint = checkpoint
        self.resume = resume
        self.runner_config = runner if runner is not None else RunnerConfig()
        self.fault_plan = fault_plan if fault_plan is not None else FaultPlan.from_env()
        self.stats = CPMRunStats(workers=workers, kernel=kernel, shards=self.shards)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._observing = self.tracer.enabled or metrics is not None
        #: The CSR snapshot the bitset kernel built, kept so downstream
        #: consumers (the analysis engine) can reuse it instead of
        #: re-deriving the degeneracy order.  None for the set kernel
        #: and for cache-hit runs that never touched the graph.
        self.csr: CSRGraph | None = None

    def run(self, *, min_k: int = 2, max_k: int | None = None) -> CommunityHierarchy:
        """Run all three phases and return the hierarchy over [min_k, max_k]."""
        if min_k < 2:
            raise ValueError(f"min_k must be >= 2, got {min_k}")

        with self.tracer.span(
            "cpm.run",
            workers=self.workers,
            min_k=min_k,
            max_k=max_k,
            kernel=self.kernel,
            shards=self.shards,
        ) as run_span:
            checksum = self._graph_checksum()
            payload = self._cache_lookup(checksum)
            if payload is not None:
                run_span.set("cache", "hit")
            elif self.cache is not None:
                run_span.set("cache", "miss")
            ckpt = self._open_checkpoint(checksum)
            if ckpt is not None:
                run_span.set("checkpoint", str(ckpt.root))
                run_span.set("resume", self.resume)
            if self.kernel == "set":
                hierarchy = self._run_set(min_k, max_k, checksum, payload, ckpt)
            else:  # bitset and blocks share the packed pipeline
                hierarchy = self._run_bitset(min_k, max_k, checksum, payload, ckpt)
            if self.stats.resumed_phases:
                run_span.set("resumed_phases", list(self.stats.resumed_phases))
            if self.stats.degraded:
                run_span.set("degraded", 1)
            return hierarchy

    # ------------------------------------------------------------------
    # Cache / checkpoint plumbing
    # ------------------------------------------------------------------
    def _graph_checksum(self) -> str | None:
        """The graph fingerprint checksum, iff a cache/checkpoint needs it."""
        if self.cache is None and self.checkpoint is None:
            return None
        return graph_fingerprint(self.graph)["checksum"]

    def _cache_lookup(self, checksum: str | None) -> dict | None:
        """Probe the cache; returns the stored payload or None."""
        if self.cache is None:
            return None
        payload = self.cache.load(checksum, self.kernel)
        if payload is None:
            self.metrics.inc("cache.misses")
        else:
            self.metrics.inc("cache.hits")
            self.stats.cache_hit = True
        return payload

    def _open_checkpoint(self, checksum: str | None) -> CheckpointStore | None:
        """Bind the checkpoint store to this run (validating on resume)."""
        if self.checkpoint is None:
            return None
        self.checkpoint.open(checksum=checksum, kernel=self.kernel, resume=self.resume)
        return self.checkpoint

    def _load_checkpoint_phase(self, ckpt: CheckpointStore | None, phase: str):
        """A resumable phase payload, or None (not resuming / not stored)."""
        if ckpt is None or not self.resume:
            return None
        return ckpt.load_phase(phase)

    def _mark_resumed(self, phase: str) -> None:
        self.stats.resumed_phases = self.stats.resumed_phases + (phase,)
        self.metrics.inc("runner.resumed_phases")

    def _boundary(self, phase: str) -> None:
        """Driver-level fault hook, fired after a phase's checkpoint write."""
        if self.fault_plan is not None:
            self.fault_plan.fire_boundary(phase)

    def _supervisor(self, phase: str, initializer=None, initargs=()) -> PoolSupervisor:
        """A supervised pool for one phase's parallel dispatch."""
        return PoolSupervisor(
            workers=self.workers,
            phase=phase,
            config=self.runner_config,
            fault_plan=self.fault_plan,
            initializer=initializer,
            initargs=initargs,
            tracer=self.tracer,
            metrics=self.metrics,
            # Explicit: the CPM always owns a private registry, so the
            # supervisor's tracer-based default would miss metrics-only
            # observation; _observing is the run's single source of truth.
            telemetry=self._observing,
        )

    def _cache_store(self, checksum: str | None, payload: dict) -> None:
        if self.cache is None or checksum is None:
            return
        self.cache.store(checksum, self.kernel, payload)
        self.metrics.inc("cache.writes")

    # ------------------------------------------------------------------
    # Bitset kernel (integer fast path)
    # ------------------------------------------------------------------
    def _run_bitset(
        self,
        min_k: int,
        max_k: int | None,
        checksum: str | None,
        payload: dict | None,
        ckpt: CheckpointStore | None = None,
    ) -> CommunityHierarchy:
        t0 = time.perf_counter()
        dense: list[tuple[int, ...]] | None = None
        n_nodes = 0
        if payload is not None:
            cliques = payload["cliques"]
            wire: OverlapWire | None = payload["wire"]
            n_counted = payload["counted_pairs"]
        else:
            wire = None
            n_counted = 0
            enum_ck = self._load_checkpoint_phase(ckpt, "enumerate")
            if enum_ck is not None:
                dense = enum_ck["dense"]
                cliques = enum_ck["cliques"]
                n_nodes = enum_ck["n_nodes"]
                self._mark_resumed("enumerate")
            elif self.shards > 1:
                from ..shard.pipeline import sharded_enumerate_dense

                dense, cliques, n_nodes = sharded_enumerate_dense(self, ckpt)
                if ckpt is not None:
                    ckpt.store_phase(
                        "enumerate",
                        {"dense": dense, "cliques": cliques, "n_nodes": n_nodes},
                    )
            else:
                dense, cliques, n_nodes = self._enumerate_phase_bitset()
                if ckpt is not None:
                    ckpt.store_phase(
                        "enumerate",
                        {"dense": dense, "cliques": cliques, "n_nodes": n_nodes},
                    )
        self._boundary("enumerate")
        t1 = time.perf_counter()

        census = CliqueCensus(cliques)
        self.stats.n_cliques = len(cliques)
        self.stats.max_clique_size = census.max_size
        self.stats.size_histogram = census.histogram
        self.stats.enumerate_seconds = t1 - t0
        self.metrics.set_gauge("cliques.max_size", census.max_size)
        top = census.max_size if max_k is None else min(max_k, census.max_size)
        if top < min_k:
            raise ValueError(f"graph has no clique of size >= {min_k}; nothing to extract")

        sizes = [len(c) for c in cliques]
        if wire is None:
            over_ck = self._load_checkpoint_phase(ckpt, "overlap")
            if (
                over_ck is not None
                and over_ck.get("wire_checksum") == over_ck["wire"].checksum()
            ):
                wire = over_ck["wire"]
                n_counted = over_ck["counted_pairs"]
                self._mark_resumed("overlap")
            else:
                if self.shards > 1:
                    from ..shard.pipeline import sharded_overlap_dense

                    wire, n_counted = sharded_overlap_dense(
                        self, dense, sizes, n_nodes, ckpt
                    )
                elif self.kernel == "blocks":
                    wire, n_counted = self._overlap_phase_blocks(dense, sizes)
                else:
                    wire, n_counted = self._overlap_phase_bitset(dense, sizes, n_nodes)
                self._cache_store(
                    checksum, {"cliques": cliques, "wire": wire, "counted_pairs": n_counted}
                )
                if ckpt is not None:
                    ckpt.store_phase(
                        "overlap",
                        {
                            "wire": wire,
                            "counted_pairs": n_counted,
                            "wire_checksum": wire.checksum(),
                        },
                    )
        self._boundary("overlap")
        t2 = time.perf_counter()
        self.stats.overlap_seconds = t2 - t1
        self.stats.n_overlap_pairs = n_counted

        hierarchy = self._percolation_phase_packed(cliques, sizes, wire, min_k, top, ckpt)
        self.stats.percolate_seconds = time.perf_counter() - t2
        return hierarchy

    def _enumerate_phase_bitset(self) -> tuple[list[tuple[int, ...]], list[tuple], int]:
        """Enumerate via the bitset/blocks kernel; returns (dense, labelled, n_nodes)."""
        with self.tracer.span("cpm.enumerate") as span:
            enum_stats = CliqueEnumerationStats() if self._observing else None
            csr = CSRGraph.from_graph(self.graph)
            self.csr = csr
            if self.kernel == "blocks":
                from .blocks import maximal_cliques_blocks

                # The uint64 block matrix is the *analysis* engine's
                # input, not the CPM pipeline's — it stays lazy
                # (csr.blocks() materialises on first use) so cpm.run
                # never pays the allocation.  Record the footprint it
                # will occupy so the manifest sizes the [perf] extra's
                # memory cost anyway.
                n_words = max(1, (csr.n + 63) >> 6)
                self.metrics.inc("cpm.blocks.bytes", csr.n * n_words * 8)
                dense = maximal_cliques_blocks(csr, min_size=2, stats=enum_stats)
            else:
                dense = maximal_cliques_bitset(csr, min_size=2, stats=enum_stats)
            dense.sort(key=len, reverse=True)
            to_label = csr.labels.__getitem__
            cliques = [tuple(map(to_label, clique)) for clique in dense]
            span.set("n_cliques", len(cliques))
            span.set("kernel", self.kernel)
            self.metrics.inc("cliques.enumerated", len(cliques))
            if enum_stats is not None:
                span.set("recursive_calls", enum_stats.calls)
                self.metrics.inc("cliques.bk_calls", enum_stats.calls)
                self.metrics.inc("cliques.bk_branches", enum_stats.branches)
                self.metrics.inc("cliques.bk_pivot_candidates", enum_stats.pivot_candidates)
        return dense, cliques, csr.n

    def _overlap_phase_bitset(
        self,
        dense: list[tuple[int, ...]],
        sizes: list[int],
        n_nodes: int,
    ) -> tuple[OverlapWire, int]:
        """Count overlaps among size>=3 cliques and pack the wire."""
        with self.tracer.span("cpm.overlap") as span:
            t0 = time.perf_counter()
            with self.tracer.span("cpm.overlap.index"):
                index = build_node_index(dense, n_nodes)
                counting = truncate_index(index, _prefix_count(sizes, 3))
            shards = self._shard(counting, self.workers)
            span.set("shards", len(shards))
            if self.workers == 1 or len(shards) == 1:
                counts, shard_stats = count_overlaps_shard(shards[0])
                shard_reports = [shard_stats]
            else:
                counts = Counter()
                shard_reports = []
                supervisor = self._supervisor("overlap")
                for partial, shard_stats in supervisor.run(
                    count_overlaps_shard, shards, fallback=count_overlaps_shard
                ):
                    counts.update(partial)
                    shard_reports.append(shard_stats)
                self.stats.degraded = self.stats.degraded or supervisor.degraded
            self._aggregate_shard_reports(shard_reports, time.perf_counter() - t0)

            n_cliques = len(sizes)
            shift = max(1, n_cliques.bit_length())
            buckets = bucketize(counts, sizes, shift)
            chains = chain_pairs(index, shift)
            wire = OverlapWire(
                n_cliques=n_cliques,
                shift=shift,
                n_pairs=sum(len(b) for b in buckets.values()),
                n_chain_pairs=len(chains),
                buckets={k: arr.tobytes() for k, arr in buckets.items()},
                chains=chains.tobytes(),
            )
            self.metrics.inc("overlap.pairs", len(counts))
            self.metrics.inc("overlap.chain_pairs", len(chains))
            span.set("pairs", len(counts))
            span.set("chain_pairs", len(chains))
            span.set("bucketed_pairs", wire.n_pairs)
            return wire, len(counts)

    def _overlap_phase_blocks(
        self,
        dense: list[tuple[int, ...]],
        sizes: list[int],
    ) -> tuple[OverlapWire, int]:
        """Vectorized overlap counting (blocks kernel), same wire out.

        One batched numpy sweep replaces the inverted index + sharded
        ``Counter`` pipeline — counting is already data-parallel inside
        numpy, so the phase runs in-driver regardless of ``workers``
        (the shard report below keeps the ``overlap.*`` aggregation
        identical across kernels).
        """
        from .blocks import count_overlaps_blocks

        with self.tracer.span("cpm.overlap") as span:
            t0 = time.perf_counter()
            n_cliques = len(sizes)
            shift = max(1, n_cliques.bit_length())
            with self.tracer.span("cpm.blocks.count") as count_span:
                wire, n_counted, shard_stats = count_overlaps_blocks(
                    dense, sizes, _prefix_count(sizes, 3), shift
                )
                count_span.set("batches", shard_stats["batches"])
            span.set("shards", 1)
            self._aggregate_shard_reports([shard_stats], time.perf_counter() - t0)
            self.metrics.inc("cpm.blocks.popcount_batches", shard_stats["batches"])
            self.metrics.inc("cpm.blocks.pair_words", shard_stats["pair_updates"])
            self.metrics.inc("overlap.pairs", n_counted)
            self.metrics.inc("overlap.chain_pairs", wire.n_chain_pairs)
            span.set("pairs", n_counted)
            span.set("chain_pairs", wire.n_chain_pairs)
            span.set("bucketed_pairs", wire.n_pairs)
            return wire, n_counted

    def _percolation_phase_packed(
        self,
        cliques: list,
        sizes: list[int],
        wire: OverlapWire,
        min_k: int,
        max_k: int,
        ckpt: CheckpointStore | None = None,
    ) -> CommunityHierarchy:
        orders = list(range(max_k, min_k - 1, -1))  # descending: incremental sweep
        grouped, todo = self._percolation_resume_state(orders, min_k, max_k, ckpt)
        with self.tracer.span("cpm.percolate", orders=len(orders), pairs=wire.n_pairs):
            t0 = time.perf_counter()
            batch_reports: list[dict] = []

            def absorb(index: int, part_and_stats: tuple) -> None:
                part, batch_stats = part_and_stats
                grouped.update(part)
                batch_reports.append(batch_stats)
                if ckpt is not None:
                    ckpt.store_phase("percolate", grouped)

            if not todo:
                self.metrics.inc("overlap.bytes_shipped", 0)
            elif self.shards > 1:
                # Sharded boundary stitching: per-bucket slices are
                # contracted to spanning chains worker-side, then one
                # in-driver sweep over the reduced wire stitches the
                # global components (identical partitions, so identical
                # groups).
                from ..shard.pipeline import sharded_reduce_wire

                reduced = sharded_reduce_wire(self, wire, ckpt)
                eligibles = [_prefix_count(sizes, k) for k in todo]
                absorb(0, _percolate_orders_packed(todo, eligibles, reduced))
            elif self.workers == 1:
                if self.kernel == "blocks":
                    from .blocks import percolate_orders_blocks as sweep
                else:
                    sweep = _percolate_orders_packed
                for chunk in self._serial_chunks(todo, ckpt):
                    eligibles = [_prefix_count(sizes, k) for k in chunk]
                    absorb(0, sweep(chunk, eligibles, wire))
                self.metrics.inc("overlap.bytes_shipped", 0)
            else:
                # Interleave orders across workers: low orders see more
                # eligible cliques (more work), so round-robin balances load.
                batches = [todo[w :: self.workers] for w in range(self.workers)]
                batches = [b for b in batches if b]
                tasks = [(b, [_prefix_count(sizes, k) for k in b]) for b in batches]
                supervisor = self._supervisor(
                    "percolate", initializer=_init_pool_shared, initargs=({"wire": wire},)
                )
                supervisor.run(
                    _percolate_batch_packed,
                    tasks,
                    fallback=lambda task: _percolate_orders_packed(task[0], task[1], wire),
                    on_result=absorb,
                )
                self.stats.degraded = self.stats.degraded or supervisor.degraded
                self.metrics.inc("overlap.bytes_shipped", wire.n_bytes)
            self._aggregate_batch_reports(batch_reports, time.perf_counter() - t0)
        self._boundary("percolate")
        with self.tracer.span("cpm.hierarchy"):
            return build_hierarchy(cliques, grouped, tracer=self.tracer, metrics=self.metrics)

    def _percolation_resume_state(
        self,
        orders: list[int],
        min_k: int,
        max_k: int,
        ckpt: CheckpointStore | None,
    ) -> tuple[dict[int, list[list[int]]], list[int]]:
        """Split orders into (already-checkpointed groups, orders still to run)."""
        grouped: dict[int, list[list[int]]] = {}
        if ckpt is not None and self.resume:
            prior = ckpt.load_phase("percolate") or {}
            grouped = {k: v for k, v in prior.items() if min_k <= k <= max_k}
            if grouped:
                self._mark_resumed("percolate")
                self.metrics.inc("runner.resumed_orders", len(grouped))
        todo = [k for k in orders if k not in grouped]
        return grouped, todo

    def _serial_chunks(self, todo: list[int], ckpt: CheckpointStore | None) -> list[list[int]]:
        """Order chunks for the serial path: one big chunk, or a few when
        checkpointing (progress is persisted per chunk, at the cost of
        re-scanning the pair buckets once per extra chunk)."""
        if ckpt is None or len(todo) <= 1:
            return [todo]
        n_chunks = min(4, len(todo))
        size = -(-len(todo) // n_chunks)
        return [todo[i : i + size] for i in range(0, len(todo), size)]

    # ------------------------------------------------------------------
    # Set kernel (reference)
    # ------------------------------------------------------------------
    def _run_set(
        self,
        min_k: int,
        max_k: int | None,
        checksum: str | None,
        payload: dict | None,
        ckpt: CheckpointStore | None = None,
    ) -> CommunityHierarchy:
        t0 = time.perf_counter()
        if payload is not None:
            cliques = payload["cliques"]
        else:
            enum_ck = self._load_checkpoint_phase(ckpt, "enumerate")
            if enum_ck is not None:
                cliques = enum_ck["cliques"]
                self._mark_resumed("enumerate")
            else:
                if self.shards > 1:
                    from ..shard.pipeline import sharded_enumerate_set

                    cliques = sharded_enumerate_set(self, ckpt)
                else:
                    cliques = self._enumerate_phase()
                if ckpt is not None:
                    ckpt.store_phase("enumerate", {"cliques": cliques})
        self._boundary("enumerate")
        t1 = time.perf_counter()
        census = CliqueCensus(cliques)
        self.stats.n_cliques = len(cliques)
        self.stats.max_clique_size = census.max_size
        self.stats.size_histogram = census.histogram
        self.stats.enumerate_seconds = t1 - t0
        self.metrics.set_gauge("cliques.max_size", census.max_size)
        top = census.max_size if max_k is None else min(max_k, census.max_size)
        if top < min_k:
            raise ValueError(f"graph has no clique of size >= {min_k}; nothing to extract")

        sizes = [len(c) for c in cliques]
        overlaps: dict | None = None
        wire: OverlapWire | None = None
        n_counted = 0
        if payload is not None:
            overlaps = payload["overlaps"]
        else:
            over_ck = self._load_checkpoint_phase(ckpt, "overlap")
            if over_ck is not None and "overlaps" in over_ck:
                overlaps = over_ck["overlaps"]
                self._mark_resumed("overlap")
            elif (
                over_ck is not None
                and "wire" in over_ck
                and over_ck.get("wire_checksum") == over_ck["wire"].checksum()
            ):
                # A sharded set run checkpointed its overlap phase in
                # wire form; resume it the same way.
                wire = over_ck["wire"]
                n_counted = over_ck["counted_pairs"]
                self._mark_resumed("overlap")
            elif self.shards > 1:
                from ..shard.pipeline import sharded_overlap_set

                wire, n_counted = sharded_overlap_set(self, cliques, sizes, ckpt)
                if ckpt is not None:
                    ckpt.store_phase(
                        "overlap",
                        {
                            "wire": wire,
                            "counted_pairs": n_counted,
                            "wire_checksum": wire.checksum(),
                        },
                    )
            else:
                overlaps = self._overlap_phase(cliques)
                self._cache_store(checksum, {"cliques": cliques, "overlaps": overlaps})
                if ckpt is not None:
                    ckpt.store_phase("overlap", {"overlaps": overlaps})
        self._boundary("overlap")
        t2 = time.perf_counter()
        self.stats.overlap_seconds = t2 - t1
        self.stats.n_overlap_pairs = n_counted if overlaps is None else len(overlaps)

        if overlaps is None:
            # Sharded set runs percolate over the packed wire (the same
            # Baudin-truncated representation the dense kernels use).
            hierarchy = self._percolation_phase_packed(
                cliques, sizes, wire, min_k, top, ckpt
            )
        else:
            hierarchy = self._percolation_phase(cliques, sizes, overlaps, min_k, top, ckpt)
        self.stats.percolate_seconds = time.perf_counter() - t2
        return hierarchy

    def _enumerate_phase(self) -> list[frozenset]:
        with self.tracer.span("cpm.enumerate") as span:
            enum_stats = CliqueEnumerationStats() if self._observing else None
            cliques = sorted(
                maximal_cliques(self.graph, min_size=2, stats=enum_stats),
                key=len,
                reverse=True,
            )
            span.set("n_cliques", len(cliques))
            span.set("kernel", "set")
            self.metrics.inc("cliques.enumerated", len(cliques))
            if enum_stats is not None:
                span.set("recursive_calls", enum_stats.calls)
                self.metrics.inc("cliques.bk_calls", enum_stats.calls)
                self.metrics.inc("cliques.bk_branches", enum_stats.branches)
                self.metrics.inc("cliques.bk_pivot_candidates", enum_stats.pivot_candidates)
        return cliques

    def _overlap_phase(self, cliques: list[frozenset]) -> dict[tuple[int, int], int]:
        with self.tracer.span("cpm.overlap") as span:
            t0 = time.perf_counter()
            with self.tracer.span("cpm.overlap.index"):
                index: dict[object, list[int]] = {}
                for cid, clique in enumerate(cliques):
                    for node in clique:
                        index.setdefault(node, []).append(cid)
            shards = self._shard(list(index.values()), self.workers)
            span.set("shards", len(shards))
            shard_reports: list[dict]
            if self.workers == 1 or len(shards) == 1:
                counts, shard_stats = _count_pairs_shard(shards[0])
                total = dict(counts)
                shard_reports = [shard_stats]
            else:
                merged: Counter[tuple[int, int]] = Counter()
                shard_reports = []
                supervisor = self._supervisor("overlap")
                for partial, shard_stats in supervisor.run(
                    _count_pairs_shard, shards, fallback=_count_pairs_shard
                ):
                    merged.update(partial)
                    shard_reports.append(shard_stats)
                self.stats.degraded = self.stats.degraded or supervisor.degraded
                total = dict(merged)
            self._aggregate_shard_reports(shard_reports, time.perf_counter() - t0)
            self.metrics.inc("overlap.pairs", len(total))
            span.set("pairs", len(total))
            return total

    def _percolation_phase(
        self,
        cliques: list[frozenset],
        sizes: list[int],
        overlaps: dict[tuple[int, int], int],
        min_k: int,
        max_k: int,
        ckpt: CheckpointStore | None = None,
    ) -> CommunityHierarchy:
        orders = list(range(min_k, max_k + 1))
        pairs = [(i, j, o) for (i, j), o in overlaps.items()]
        grouped, todo = self._percolation_resume_state(orders, min_k, max_k, ckpt)
        with self.tracer.span("cpm.percolate", orders=len(orders), pairs=len(pairs)):
            t0 = time.perf_counter()
            batch_reports: list[dict] = []

            def absorb(index: int, part_and_stats: tuple) -> None:
                part, batch_stats = part_and_stats
                grouped.update(part)
                batch_reports.append(batch_stats)
                if ckpt is not None:
                    ckpt.store_phase("percolate", grouped)

            if not todo:
                self.metrics.inc("overlap.bytes_shipped", 0)
            elif self.workers == 1:
                for chunk in self._serial_chunks(todo, ckpt):
                    absorb(0, _percolate_orders(chunk, sizes, pairs))
                self.metrics.inc("overlap.bytes_shipped", 0)
            else:
                # Interleave orders across workers: low orders see more
                # eligible cliques (more work), so round-robin balances load.
                batches = [todo[w :: self.workers] for w in range(self.workers)]
                batches = [b for b in batches if b]
                # Pack the triples once and install them per worker process
                # via the pool initializer — the old path re-pickled the
                # whole pair list for every batch (O(workers x pairs)).
                blob = pack_triples(pairs).tobytes()
                supervisor = self._supervisor(
                    "percolate",
                    initializer=_init_pool_shared,
                    initargs=({"sizes": sizes, "triples": blob},),
                )
                supervisor.run(
                    _percolate_batch_set,
                    batches,
                    fallback=lambda orders: _percolate_orders(orders, sizes, pairs),
                    on_result=absorb,
                )
                self.stats.degraded = self.stats.degraded or supervisor.degraded
                self.metrics.inc("overlap.bytes_shipped", len(blob))
            self._aggregate_batch_reports(batch_reports, time.perf_counter() - t0)
        self._boundary("percolate")
        with self.tracer.span("cpm.hierarchy"):
            return build_hierarchy(cliques, grouped, tracer=self.tracer, metrics=self.metrics)

    # ------------------------------------------------------------------
    # Shared plumbing
    # ------------------------------------------------------------------
    def _aggregate_shard_reports(self, shard_reports: list[dict], elapsed: float) -> None:
        busy = 0.0
        for shard_stats in shard_reports:
            busy += shard_stats["wall_seconds"]
            self.metrics.observe("overlap.shard_seconds", shard_stats["wall_seconds"])
            self.metrics.observe("overlap.shard_nodes", shard_stats["nodes"])
            self.metrics.observe("overlap.shard_incidences", shard_stats["incidences"])
            self.metrics.inc("overlap.pair_updates", shard_stats["pair_updates"])
            self.metrics.observe("worker.max_rss_kib", shard_stats["max_rss_kib"])
        if elapsed > 0:
            self.metrics.set_gauge(
                "overlap.worker_utilisation", min(1.0, busy / (elapsed * self.workers))
            )

    def _aggregate_batch_reports(self, batch_reports: list[dict], elapsed: float) -> None:
        busy = 0.0
        for batch_stats in batch_reports:
            busy += batch_stats["wall_seconds"]
            self.metrics.inc("percolate.skipped_pairs", batch_stats["skipped_pairs"])
            self.metrics.inc("percolate.union_merges", batch_stats["union_merges"])
            self.metrics.observe("percolate.batch_seconds", batch_stats["wall_seconds"])
            self.metrics.observe("percolate.batch_orders", batch_stats["orders"])
            self.metrics.observe("worker.max_rss_kib", batch_stats["max_rss_kib"])
        if elapsed > 0:
            self.metrics.set_gauge(
                "percolate.worker_utilisation", min(1.0, busy / (elapsed * self.workers))
            )

    @staticmethod
    def _shard(items: list, n: int) -> list[list]:
        """Split ``items`` into up to ``n`` contiguous shards (never empty)."""
        if not items:
            return [[]]
        n = min(n, len(items))
        size, extra = divmod(len(items), n)
        shards, start = [], 0
        for w in range(n):
            end = start + size + (1 if w < extra else 0)
            shards.append(items[start:end])
            start = end
        return shards

    def overlap_index(self) -> CliqueOverlapIndex:
        """Expose the sequential index (shared API with repro.core.percolation)."""
        return CliqueOverlapIndex.from_graph(self.graph)
