"""Reporting: text renderings of the paper's tables and figures."""

from .atlas import Atlas, CountryProfile, IXPProfile, build_atlas
from .csvdata import figure_csvs, write_figure_csvs
from .figures import ascii_scatter, ascii_table, format_number
from .graphml import graphml_document, write_graphml
from .html import render_html_report
from .paper import PaperRun
from .svg import svg_scatter

__all__ = [
    "PaperRun",
    "ascii_scatter",
    "ascii_table",
    "format_number",
    "render_html_report",
    "svg_scatter",
    "graphml_document",
    "write_graphml",
    "figure_csvs",
    "write_figure_csvs",
    "Atlas",
    "IXPProfile",
    "CountryProfile",
    "build_atlas",
]
