"""Edge-list serialisation for topology graphs.

The measurement datasets the paper merges (CAIDA IPv4 Routed /24 AS
Links, DIMES, UCLA IRL) are all, after normalisation, flat AS-pair edge
lists.  This module reads and writes that interchange format:

* one edge per line, two whitespace-separated AS numbers;
* ``#``-prefixed comment lines and blank lines ignored;
* duplicate and reversed duplicates collapse (the graph is simple).
"""

from __future__ import annotations

import io
from collections.abc import Iterable
from pathlib import Path

from .undirected import Graph

__all__ = ["read_edgelist", "write_edgelist", "parse_edgelist", "format_edgelist"]


class EdgeListError(ValueError):
    """Raised when an edge-list line cannot be parsed."""


def parse_edgelist(lines: Iterable[str], *, node_type: type = int) -> Graph:
    """Build a graph from edge-list ``lines``.

    ``node_type`` converts each token (default ``int``, since AS numbers
    are integers).  Self-loops are rejected — they are spurious data in
    an AS-level topology and the merge methodology of [10] drops them.
    """
    graph = Graph()
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 2:
            raise EdgeListError(f"line {lineno}: expected 2 tokens, got {len(parts)}: {line!r}")
        try:
            u, v = node_type(parts[0]), node_type(parts[1])
        except (TypeError, ValueError) as exc:
            raise EdgeListError(
                f"line {lineno}: cannot parse {line!r} as {node_type.__name__}"
            ) from exc
        if u == v:
            continue  # spurious self-link: skip, mirroring dataset cleaning
        graph.add_edge(u, v)
    return graph


def read_edgelist(path: str | Path, *, node_type: type = int) -> Graph:
    """Read a graph from the edge-list file at ``path``."""
    with open(path, encoding="utf-8") as handle:
        return parse_edgelist(handle, node_type=node_type)


def format_edgelist(graph: Graph, *, header: str | None = None) -> str:
    """Render ``graph`` as edge-list text with deterministic ordering."""
    out = io.StringIO()
    if header:
        for line in header.splitlines():
            out.write(f"# {line}\n")
    for u, v in sorted(tuple(sorted((a, b))) for a, b in graph.edges()):
        out.write(f"{u} {v}\n")
    return out.getvalue()


def write_edgelist(graph: Graph, path: str | Path, *, header: str | None = None) -> None:
    """Write ``graph`` to ``path`` in edge-list format."""
    Path(path).write_text(format_edgelist(graph, header=header), encoding="utf-8")
