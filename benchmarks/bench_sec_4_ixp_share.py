"""Section 4 text — IXP tags over the community tree.

Paper: every community with k >= 16 has > 90% on-IXP members; 35
communities have a full-share IXP; the full-share regimes split the
tree into three bands (crown > 28 at big IXPs, root < 14 at small IXPs,
trunk in between with none).
"""

from repro.analysis.bands import derive_bands
from repro.analysis.ixp_share import IXPShareAnalysis
from repro.report.figures import ascii_table


def test_section_4_ixp_share(benchmark, context, emit):
    analysis = benchmark(lambda: IXPShareAnalysis(context))
    threshold = analysis.high_on_ixp_threshold(fraction=0.9)
    full = analysis.full_share_communities()
    gap = analysis.no_full_share_band()
    bands = derive_bands(analysis)
    rows = [
        [r.label, r.k, r.size, r.full_share_ixps[0]]
        for r in full
    ]
    table = ascii_table(
        ["community", "k", "size", "full-share IXP"],
        rows,
        title="Communities fully contained in an IXP-induced subgraph (paper: 35)",
    )
    summary = (
        f">=90% on-IXP for every community with k >= {threshold} (paper: 16); "
        f"full-share communities: {len(full)}; "
        f"no-full-share band: k in {gap} (paper: [14, 28]); "
        f"derived bands: root<=k{bands.root_max}, crown>=k{bands.crown_min}"
    )
    emit("section_4_ixp_share", f"{table}\n{summary}")

    assert threshold is not None and threshold <= 16
    assert len(full) > 10
    assert gap is not None
    # Regime structure: full shares at both extremes, none between.
    orders = analysis.full_share_orders()
    assert min(orders) < gap[0] and max(orders) > gap[1]
