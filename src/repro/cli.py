"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``generate`` — build a synthetic April-2010-like dataset and save it;
* ``communities`` — run LP-CPM on a dataset (or edge list) and dump the
  per-k census and community members;
* ``tree`` — print the k-clique community tree (ASCII or DOT);
* ``paper`` — regenerate every table and figure of the paper.

Every CPM-running command accepts ``--trace PATH`` (JSONL span trace,
including worker-attributed spans shipped back from pool processes)
and ``--metrics PATH`` (JSON :class:`repro.obs.RunManifest` with the
graph fingerprint, per-phase wall/CPU/peak-memory, the core counters
and — at ``--resource-interval`` seconds — a sampled RSS/CPU series) —
the observability artifacts described in ``docs/observability.md`` —
plus ``--kernel {bitset,blocks,set,auto}`` to pick the CPM kernel and
``--cache/--no-cache`` to reuse clique/overlap results across runs
(``docs/performance.md``).  Observability files are flushed even when
the run fails, so a crashed pipeline still leaves a valid trace.
``tree`` and ``paper`` also take ``--analysis-engine {bitset,set}`` to
choose between the one-pass bitset metric engine and the set-based
reference oracle for the Chapter-4 analyses.  ``--checkpoint-dir DIR``
(with ``--resume`` on the restart) makes interrupted runs resumable,
and ``--batch-timeout``/``--max-retries`` tune the worker supervision
policy (``docs/robustness.md``).  CPM execution routes through the
:mod:`repro.api` facade.

The ``query`` family is the serveable read path (``docs/query-service
.md``): ``query build`` runs CPM once and freezes the hierarchy +
metric table into an immutable, fingerprint-keyed artifact; ``query
lookup`` answers membership/band/LCA/top-N point queries from that
artifact with zero CPM recompute; ``query serve`` exposes the same
lookups as JSON endpoints from a long-lived stdlib HTTP server.

The ``obs`` family inspects the artifacts after the fact:
``obs view`` renders a trace as an ASCII span tree, ``obs diff``
prints signed scalar deltas between two manifests, ``obs export
--format perfetto`` converts a trace for ``ui.perfetto.dev``
(``--format prometheus`` renders a manifest's metrics block as
Prometheus text), ``obs history`` charts committed ``BENCH_*.json``
scalars across git history, and ``obs tail URL`` polls a running
query server's ``/health`` + ``/metrics`` into a live per-endpoint
rate/err/p99 view.  Every instrumented command also accepts
``--log-json PATH|-`` for structured NDJSON event logs stamped with a
``run_id`` that the manifest records too.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .analysis.context import AnalysisContext
from .analysis.engine import ENGINES
from .query.engine import TOP_METRICS
from .api import run_cpm, save_result
from .core.cache import CliqueCache
from .core.lightweight import KERNELS
from .graph.io import read_edgelist
from .obs import (
    NULL_TRACER,
    MetricsRegistry,
    ResourceMonitor,
    RunManifest,
    Tracer,
    diff_manifests,
    history,
    load_trace,
    render_tree,
    write_perfetto,
)
from .obs import logging as obs_logging
from .report.paper import PaperRun
from .runner import CheckpointStore, RunnerConfig
from .topology.dataset import ASDataset
from .topology.generator import GeneratorConfig, generate_topology

__all__ = ["main"]


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared --trace / --metrics observability flags."""
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a JSONL span trace of the run here",
    )
    parser.add_argument(
        "--metrics", default=None, metavar="PATH",
        help="write a JSON run manifest (fingerprint, spans, metrics) here",
    )
    parser.add_argument(
        "--resource-interval", type=float, default=0.25, metavar="SECONDS",
        help=(
            "RSS/CPU sampling interval for the manifest's resources series "
            "(used with --metrics; 0 disables the sampler)"
        ),
    )
    parser.add_argument(
        "--log-json", default=None, metavar="PATH",
        help=(
            "emit newline-delimited JSON events (run_id-stamped; '-' for "
            "stderr) — phase progress, retries, and for `query serve` the "
            "per-request access log"
        ),
    )


def _add_cpm_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared CPM kernel/cache selection flags."""
    parser.add_argument(
        "--kernel", choices=[*KERNELS, "auto"], default="bitset",
        help=(
            "CPM kernel: the integer fast path (default), the numpy-vectorized "
            "blocks kernel ([perf] extra), the set-based reference, or auto "
            "(blocks when numpy is installed, else bitset)"
        ),
    )
    parser.add_argument(
        "--shards", default="1", metavar="N",
        help=(
            "partition every CPM phase's data into N shards fanned out across "
            "--workers ('auto' = one shard per worker); output is byte-identical "
            "to the serial pipeline"
        ),
    )
    parser.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=False,
        help=(
            "reuse/store clique+overlap results on disk, keyed by the graph "
            "fingerprint ($REPRO_CACHE_DIR or ~/.cache/repro); --no-cache disables"
        ),
    )
    parser.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="persist each phase's output here so an interrupted run can be resumed",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume from the phases already completed in --checkpoint-dir",
    )
    parser.add_argument(
        "--batch-timeout", type=float, default=None, metavar="SECONDS",
        help="declare a worker batch stalled after this many seconds (workers > 1)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=None, metavar="N",
        help="retries per failed worker batch before degrading to serial execution",
    )


def _make_cache(args: argparse.Namespace) -> CliqueCache | None:
    """The on-disk clique cache, iff ``--cache`` was requested."""
    return CliqueCache() if getattr(args, "cache", False) else None


def _make_runner(args: argparse.Namespace) -> dict:
    """The facade kwargs carrying the resilient-runner CLI flags."""
    if getattr(args, "resume", False) and not getattr(args, "checkpoint_dir", None):
        raise ValueError("--resume requires --checkpoint-dir")
    checkpoint_dir = getattr(args, "checkpoint_dir", None)
    runner = None
    timeout = getattr(args, "batch_timeout", None)
    retries = getattr(args, "max_retries", None)
    if timeout is not None or retries is not None:
        defaults = RunnerConfig()
        runner = RunnerConfig(
            batch_timeout=timeout,
            max_retries=defaults.max_retries if retries is None else retries,
        )
    return {
        "checkpoint": CheckpointStore(checkpoint_dir) if checkpoint_dir else None,
        "resume": getattr(args, "resume", False),
        "runner": runner,
        "shards": getattr(args, "shards", 1),
    }


def _make_observability(
    args: argparse.Namespace,
) -> tuple[Tracer, MetricsRegistry | None, ResourceMonitor | None]:
    """Tracer + registry + resource sampler: real ones iff a flag asked.

    The :class:`ResourceMonitor` starts only for manifest-producing
    runs with a positive ``--resource-interval`` — uninstrumented runs
    never spawn the sampling thread.
    """
    if not (getattr(args, "trace", None) or getattr(args, "metrics", None)):
        return NULL_TRACER, None, None
    monitor = None
    interval = getattr(args, "resource_interval", 0.0) or 0.0
    if getattr(args, "metrics", None) and interval > 0:
        monitor = ResourceMonitor(interval=interval).start()
    return Tracer(memory=True), MetricsRegistry(), monitor


def _run_settings(args: argparse.Namespace) -> dict:
    """The comparability-critical settings stamped into the manifest.

    The kernel is recorded *resolved* (``auto`` → the kernel that
    actually ran) together with the numpy version (or ``None`` on a
    numpy-less install), so two manifests can be told apart by the
    numerical stack — ``repro obs diff`` warns when they disagree.
    """
    settings = {
        key: value
        for key, value in vars(args).items()
        if key in ("kernel", "workers", "analysis_engine", "min_k", "max_k")
        and value is not None
    }
    if getattr(args, "shards", None) is not None:
        from .shard.plan import resolve_shards

        try:
            # Recorded *resolved* ("auto" -> the count that actually ran),
            # like the kernel below — ``repro obs diff`` warns on mismatch.
            settings["shards"] = resolve_shards(
                args.shards, getattr(args, "workers", 1) or 1
            )
        except ValueError:
            settings["shards"] = args.shards
    if "kernel" in settings:
        from .core._blocks_compat import numpy_version
        from .core.lightweight import resolve_kernel

        try:
            settings["kernel"] = resolve_kernel(settings["kernel"])
        except ValueError:
            pass  # failed runs still flush a manifest; keep the request as-is
        settings["numpy"] = numpy_version()
    return settings


def _write_observability(
    args: argparse.Namespace,
    tracer: Tracer,
    metrics: MetricsRegistry | None,
    *,
    graph=None,
    monitor: ResourceMonitor | None = None,
    fingerprint: dict | None = None,
) -> None:
    """Emit the trace/manifest files requested on the command line.

    Called from the commands' ``finally`` blocks, so it also runs on
    failures: the tracer is closed *first* (finalising any spans an
    exception left open), making the flushed trace complete and valid.
    ``fingerprint`` stamps a precomputed graph fingerprint into the
    manifest for commands that never hold the graph itself (the query
    family reads it out of the artifact).
    """
    if monitor is not None:
        monitor.stop()
    tracer.close()
    if getattr(args, "trace", None):
        tracer.write_jsonl(args.trace)
        print(f"wrote trace ({len(tracer.records)} spans) to {args.trace}")
    if getattr(args, "metrics", None):
        config = {
            key: value
            for key, value in vars(args).items()
            if key != "func" and isinstance(value, (str, int, float, bool, type(None)))
        }
        run_id = obs_logging.current_run_id()
        if run_id is not None:
            # Same id every --log-json event carries: a manifest and a
            # log stream from one invocation join on it.
            config["run_id"] = run_id
        manifest = RunManifest.collect(
            label=f"cli.{args.command}",
            graph=graph,
            config=config,
            settings=_run_settings(args),
            tracer=tracer,
            metrics=metrics,
            resources=monitor.series() if monitor is not None else None,
        )
        if fingerprint is not None and manifest.fingerprint is None:
            manifest.fingerprint = dict(fingerprint)
        manifest.save(args.metrics)
        print(f"wrote run manifest to {args.metrics}")


def _load_dataset(path: str) -> ASDataset:
    target = Path(path)
    if not target.exists():
        raise FileNotFoundError(f"dataset path does not exist: {target}")
    if target.is_dir():
        return ASDataset.load(target)
    # Bare edge list: wrap it with empty side datasets.
    from .topology.geography import GeoRegistry
    from .topology.ixp import IXPRegistry

    return ASDataset(
        graph=read_edgelist(target),
        ixps=IXPRegistry(),
        geography=GeoRegistry(),
    )


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.config:
        from .topology.configio import load_config

        config = load_config(args.config)
    else:
        config = {
            "default": GeneratorConfig.default,
            "tiny": GeneratorConfig.tiny,
            "paper-scale": GeneratorConfig.paper_scale,
        }[args.profile]()
    dataset = generate_topology(config, seed=args.seed)
    dataset.save(args.out)
    print(f"wrote {dataset!r} to {args.out}")
    return 0


def _cmd_communities(args: argparse.Namespace) -> int:
    runner_kwargs = _make_runner(args)
    dataset = _load_dataset(args.dataset)
    tracer, metrics, monitor = _make_observability(args)
    try:
        result = run_cpm(
            dataset.graph,
            k_range=(args.min_k, args.max_k),
            workers=args.workers,
            kernel=args.kernel,
            cache=_make_cache(args),
            tracer=tracer,
            metrics=metrics,
            **runner_kwargs,
        )
        hierarchy = result.hierarchy
        if result.stats.cache_hit:
            print("clique cache: hit (enumeration + overlap skipped)")
        if result.stats.resumed_phases:
            print(f"resumed from checkpoint: {', '.join(result.stats.resumed_phases)}")
        if result.degraded:
            print("warning: run degraded to serial execution for some batches")
        print(f"maximal cliques: {result.stats.n_cliques} (max size {result.stats.max_clique_size})")
        print(f"total communities: {hierarchy.total_communities}")
        for k in hierarchy.orders:
            print(f"k={k}: {len(hierarchy[k])} communities")
            if args.members:
                for community in hierarchy[k]:
                    members = ",".join(map(str, sorted(community.members)))
                    print(f"  {community.label} ({community.size}): {members}")
    finally:
        _write_observability(args, tracer, metrics, graph=dataset.graph, monitor=monitor)
    return 0


def _cmd_tree(args: argparse.Namespace) -> int:
    runner_kwargs = _make_runner(args)
    dataset = _load_dataset(args.dataset)
    tracer, metrics, monitor = _make_observability(args)
    try:
        context = AnalysisContext.from_dataset(
            dataset,
            workers=args.workers,
            kernel=args.kernel,
            cache=_make_cache(args),
            analysis_engine=args.analysis_engine,
            tracer=tracer,
            metrics=metrics,
            **runner_kwargs,
        )
        if args.format == "dot":
            band_of = None
            if args.bands:
                from .analysis.bands import derive_bands
                from .analysis.ixp_share import IXPShareAnalysis

                boundaries = derive_bands(IXPShareAnalysis(context))
                band_of = boundaries.band_of
            print(context.tree.to_dot(band_of=band_of))
        else:
            print(context.tree.to_ascii(max_children=args.max_children))
    finally:
        _write_observability(args, tracer, metrics, graph=dataset.graph, monitor=monitor)
    return 0


def _cmd_graphml(args: argparse.Namespace) -> int:
    from .analysis.bands import derive_bands
    from .analysis.ixp_share import IXPShareAnalysis
    from .report.graphml import write_graphml

    dataset = _load_dataset(args.dataset)
    context = AnalysisContext.from_dataset(dataset, workers=args.workers)
    bands = derive_bands(IXPShareAnalysis(context))
    write_graphml(context, args.out, k=args.k, bands=bands)
    print(f"wrote GraphML with k={args.k} memberships to {args.out}")
    return 0


def _cmd_paper(args: argparse.Namespace) -> int:
    if args.dataset:
        dataset = _load_dataset(args.dataset)
    else:
        dataset = generate_topology(seed=args.seed)
    tracer, metrics, monitor = _make_observability(args)
    try:
        run = PaperRun(
            dataset,
            workers=args.workers,
            kernel=args.kernel,
            analysis_engine=args.analysis_engine,
            cache=_make_cache(args),
            tracer=tracer,
            metrics=metrics,
            **_make_runner(args),
        )
        wrote_artifacts = False
        if args.html:
            from .report.html import render_html_report

            Path(args.html).write_text(render_html_report(run), encoding="utf-8")
            print(f"wrote HTML report to {args.html}")
            wrote_artifacts = True
        if args.csv_dir:
            from .report.csvdata import write_figure_csvs

            files = write_figure_csvs(run, args.csv_dir)
            print(f"wrote {len(files)} CSV/manifest files to {args.csv_dir}")
            wrote_artifacts = True
        if not wrote_artifacts:
            print(run.full_report())
    finally:
        _write_observability(args, tracer, metrics, graph=dataset.graph, monitor=monitor)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from .graph.stats import summarize_graph
    from .report.figures import ascii_table

    dataset = _load_dataset(args.dataset)
    summary = summarize_graph(dataset.graph)
    print(
        ascii_table(
            ["metric", "value"],
            [
                ["nodes", summary.n_nodes],
                ["edges", summary.n_edges],
                ["mean degree", round(summary.mean_degree, 3)],
                ["max degree", summary.max_degree],
                ["power-law alpha (MLE)", round(summary.powerlaw_alpha, 3)],
                ["global clustering", round(summary.global_clustering, 4)],
                ["avg local clustering", round(summary.average_local_clustering, 4)],
                ["degree assortativity", round(summary.assortativity, 4)],
                ["top-1% degree density", round(summary.top_degree_density, 4)],
            ],
            title="Topology statistics",
        )
    )
    return 0


def _cmd_evolve(args: argparse.Namespace) -> int:
    from .evolution import EventKind, EvolutionTracker, TopologyEvolution
    from .topology.generator import GeneratorConfig

    profile = {
        "default": GeneratorConfig.default,
        "tiny": GeneratorConfig.tiny,
    }[args.profile]()
    strategy = "incremental" if args.incremental else args.strategy
    evolution = TopologyEvolution(profile, seed=args.seed, n_snapshots=args.snapshots)
    print("growth:")
    for t, nodes, edges in evolution.growth_series():
        print(f"  t={t:.2f}  {nodes} ASes  {edges} links")
    tracker = EvolutionTracker(evolution.snapshots(), k=args.k, strategy=strategy)
    counts = tracker.event_counts()
    print(f"community events at k={args.k}:")
    for kind in EventKind:
        print(f"  {kind.value}: {counts[kind]}")
    # Update records are strategy-independent by construction, so this
    # output diffs clean between --strategy runs (the CI smoke relies
    # on that).
    print("per-snapshot updates:")
    for update in tracker.updates:
        print(f"  {update.summary()}")
    longest = tracker.longest_timeline()
    print(f"longest timeline: born at snapshot {longest.born_at}, sizes {longest.sizes()}")
    return 0


def _parse_edge(value: str) -> tuple:
    """One CLI edge spec ``U,V`` (or ``U:V``) -> an endpoint pair."""
    from .query.server import parse_as

    separator = "," if "," in value else ":"
    parts = value.split(separator)
    if len(parts) != 2 or not parts[0] or not parts[1]:
        raise ValueError(f"bad edge {value!r}; expected the form U,V (e.g. 64512,64513)")
    return (parse_as(parts[0].strip()), parse_as(parts[1].strip()))


def _session_delta(args: argparse.Namespace):
    """Assemble the EdgeDelta of a ``session apply`` invocation."""
    import json as _json

    from .incremental import EdgeDelta

    insertions = [_parse_edge(edge) for edge in args.insert or []]
    deletions = [_parse_edge(edge) for edge in args.delete or []]
    if args.delta:
        document = _json.loads(Path(args.delta).read_text(encoding="utf-8"))
        if not isinstance(document, dict):
            raise ValueError(f"delta file {args.delta} must hold a JSON object")
        insertions += [tuple(edge) for edge in document.get("insertions", [])]
        deletions += [tuple(edge) for edge in document.get("deletions", [])]
    if not insertions and not deletions:
        raise ValueError(
            "empty delta: give --insert/--delete edges or a --delta file"
        )
    return EdgeDelta(insertions=insertions, deletions=deletions)


def _print_session_status(session) -> None:
    """Render one session's ``describe()`` block as the status table."""
    from .report.figures import ascii_table

    info = session.describe()
    fingerprint = info["fingerprint"]
    print(
        ascii_table(
            ["field", "value"],
            [
                ["kernel", info["kernel"]],
                ["nodes", fingerprint["nodes"]],
                ["edges", fingerprint["edges"]],
                ["checksum", fingerprint["checksum"]],
                ["maximal cliques", info["n_cliques"]],
                ["largest clique", info["max_clique_size"]],
                ["counted overlaps", info["n_overlap_pairs"]],
                ["orders", f"{min(info['orders'])}..{max(info['orders'])}" if info["orders"] else "-"],
                ["communities", info["total_communities"]],
                ["applied batches", info["applied_batches"]],
            ],
            title="Incremental CPM session",
        )
    )


def _cmd_session_open(args: argparse.Namespace) -> int:
    from .api import open_session

    dataset = _load_dataset(args.dataset)
    tracer, metrics, monitor = _make_observability(args)
    try:
        session = open_session(
            dataset.graph,
            kernel=args.kernel,
            cache=_make_cache(args),
            tracer=tracer,
            metrics=metrics,
        )
        session.save(args.session_dir)
        if session.cache_hit:
            print("clique cache: hit (enumeration + overlap skipped)")
        print(f"opened session in {args.session_dir}")
        _print_session_status(session)
    finally:
        _write_observability(args, tracer, metrics, graph=dataset.graph, monitor=monitor)
    return 0


def _cmd_session_apply(args: argparse.Namespace) -> int:
    from .api import load_session

    delta = _session_delta(args)
    tracer, metrics, monitor = _make_observability(args)
    session = None
    try:
        session = load_session(args.session_dir, tracer=tracer, metrics=metrics)
        update = session.apply(delta)
        session.save(args.session_dir)
        print(update.summary())
        for change in update.changes:
            arrow = f"{list(change.old_labels)} -> {list(change.new_labels)}"
            print(
                f"  k={change.k} {change.kind}: {arrow} "
                f"(size {change.size_before} -> {change.size_after})"
            )
    finally:
        graph = session.graph if session is not None else None
        _write_observability(args, tracer, metrics, graph=graph, monitor=monitor)
    return 0


def _cmd_session_status(args: argparse.Namespace) -> int:
    from .api import load_session

    session = load_session(args.session_dir)
    _print_session_status(session)
    return 0


def _cmd_atlas(args: argparse.Namespace) -> int:
    from .report.atlas import build_atlas

    dataset = _load_dataset(args.dataset)
    context = AnalysisContext.from_dataset(dataset, workers=args.workers)
    atlas = build_atlas(context)
    print(atlas.render(top=args.top))
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    runner_kwargs = _make_runner(args)
    dataset = _load_dataset(args.dataset)
    tracer, metrics, monitor = _make_observability(args)
    try:
        result = run_cpm(
            dataset.graph,
            k_range=(args.min_k, args.max_k),
            workers=args.workers,
            kernel=args.kernel,
            cache=_make_cache(args),
            tracer=tracer,
            metrics=metrics,
            **runner_kwargs,
        )
        save_result(result, args.out)
        hierarchy = result.hierarchy
        print(
            f"wrote {hierarchy.total_communities} communities "
            f"(k in [{hierarchy.min_k}, {hierarchy.max_k}]) to {args.out}"
        )
    finally:
        _write_observability(args, tracer, metrics, graph=dataset.graph, monitor=monitor)
    return 0


def _guard_stale_artifact(out: Path, dataset, *, force: bool) -> None:
    """Refuse to overwrite an artifact built from a *different* graph.

    ``query build`` used to clobber whatever sat at the output path,
    silently replacing an artifact another dataset's pipeline produced.
    Now the existing artifact's stored fingerprint is compared with the
    current dataset's before the (expensive) CPM run: a mismatch — or
    an unreadable existing file — aborts unless ``--force``.  Matching
    fingerprints rebuild freely: that is a refresh, not a clobber.
    """
    if force or not out.exists():
        return
    from .api import load_query_artifact
    from .obs.manifest import graph_fingerprint
    from .query.artifact import ArtifactError

    try:
        existing = load_query_artifact(out, mmap=False).fingerprint
    except ArtifactError as exc:
        raise ValueError(
            f"refusing to overwrite {out}: the existing file is not a readable "
            f"query artifact ({exc}); re-run with --force to replace it"
        ) from exc
    current = graph_fingerprint(dataset.graph)
    if existing.get("checksum") != current["checksum"]:
        raise ValueError(
            f"refusing to overwrite {out}: it was built from a different graph "
            f"(stored fingerprint {existing.get('checksum')!r}, this dataset is "
            f"{current['checksum']!r}); re-run with --force to replace it"
        )


def _cmd_query_build(args: argparse.Namespace) -> int:
    runner_kwargs = _make_runner(args)
    dataset = _load_dataset(args.dataset)
    _guard_stale_artifact(Path(args.out), dataset, force=args.force)
    tracer, metrics, monitor = _make_observability(args)
    try:
        from .analysis.bands import derive_bands
        from .analysis.ixp_share import IXPShareAnalysis
        from .query.artifact import build_artifact

        context = AnalysisContext.from_dataset(
            dataset,
            workers=args.workers,
            kernel=args.kernel,
            cache=_make_cache(args),
            min_k=args.min_k,
            max_k=args.max_k,
            analysis_engine=args.analysis_engine,
            tracer=tracer,
            metrics=metrics,
            **runner_kwargs,
        )
        bands = derive_bands(IXPShareAnalysis(context))
        table = {
            row["label"]: (row["link_density"], row["average_odf"])
            for row in context.engine.export_table()["rows"]
        }
        artifact = build_artifact(
            context.hierarchy,
            tree=context.tree,
            graph=dataset.graph,
            csr=context.csr,
            table=table,
            bands=bands,
            tracer=tracer,
            metrics=metrics,
        )
        target = artifact.save(args.out)
        checksum = artifact.fingerprint.get("checksum", "?")
        print(
            f"wrote query artifact ({artifact.n_communities} communities, "
            f"{artifact.n_nodes} ASes, fingerprint {checksum}) to {target}"
        )
    finally:
        _write_observability(args, tracer, metrics, graph=dataset.graph, monitor=monitor)
    return 0


def _cmd_query_lookup(args: argparse.Namespace) -> int:
    import json

    from .api import load_query_artifact
    from .query.engine import LookupEngine
    from .query.server import parse_as

    tracer, metrics, monitor = _make_observability(args)
    artifact = None
    try:
        artifact = load_query_artifact(args.artifact)
        engine = LookupEngine(artifact, tracer=tracer, metrics=metrics)
        results: dict = {}
        if args.info:
            results["info"] = engine.info()
        if args.member is not None:
            node = parse_as(args.member)
            results["membership"] = {
                "as": node,
                "memberships": {
                    str(k): labels for k, labels in engine.memberships(node).items()
                },
            }
        if args.band is not None:
            results["band"] = engine.band(parse_as(args.band))
        if args.lca is not None:
            a, b = (parse_as(value) for value in args.lca)
            results["lca"] = {"a": a, "b": b, "lca": engine.lowest_common(a, b)}
        if args.top is not None:
            results["top"] = {
                "metric": args.top,
                "k": args.k,
                "communities": engine.top(args.top, args.n, args.k),
            }
        if args.community is not None:
            results["community"] = engine.community(
                args.community, members=args.members
            )
        if not results:
            raise ValueError(
                "nothing to look up: pass --info, --member, --band, --lca, "
                "--top and/or --community"
            )
        print(json.dumps(results, indent=2, sort_keys=True))
    finally:
        if artifact is not None:
            fingerprint = artifact.fingerprint or None
            artifact.close()
        else:
            fingerprint = None
        _write_observability(
            args, tracer, metrics, monitor=monitor, fingerprint=fingerprint
        )
    return 0


def _cmd_query_serve(args: argparse.Namespace) -> int:
    from .api import load_query_artifact
    from .query.server import make_server

    tracer, metrics, monitor = _make_observability(args)
    # A server always keeps a live registry (it feeds /metrics) and —
    # unlike batch commands — always samples resources while serving:
    # /metrics exposes RSS/CPU as process gauges even when no manifest
    # was requested.  0 still disables the sampler.
    if metrics is None:
        metrics = MetricsRegistry()
    interval = getattr(args, "resource_interval", 0.0) or 0.0
    if monitor is None and interval > 0:
        monitor = ResourceMonitor(interval=interval).start()
    artifact = None
    try:
        artifact = load_query_artifact(args.artifact)
        server = make_server(
            artifact,
            host=args.host,
            port=args.port,
            tracer=tracer,
            metrics=metrics,
            monitor=monitor,
            serialize_requests=args.serialize_requests,
        )
        server.max_requests = args.max_requests
        print(
            f"serving query artifact {args.artifact} "
            f"({artifact.n_communities} communities) at {server.url}",
            flush=True,
        )
        obs_logging.log_event(
            "query.serve.start",
            url=server.url,
            artifact=str(args.artifact),
            communities=artifact.n_communities,
            max_requests=args.max_requests,
            serialize_requests=args.serialize_requests,
        )
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("interrupted; shutting down")
        finally:
            server.server_close()
            obs_logging.log_event("query.serve.stop", served=server.served)
    finally:
        fingerprint = artifact.fingerprint or None if artifact is not None else None
        if artifact is not None:
            artifact.close()
        _write_observability(
            args, tracer, metrics, monitor=monitor, fingerprint=fingerprint
        )
    return 0


def _cmd_obs_view(args: argparse.Namespace) -> int:
    spans, _document = load_trace(args.trace)
    print(render_tree(spans, hot_count=args.hot))
    return 0


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    import json

    base = json.loads(Path(args.a).read_text(encoding="utf-8"))
    fresh = json.loads(Path(args.b).read_text(encoding="utf-8"))
    # Full paths, not basenames: a fingerprint/settings warning in a CI
    # log must name which manifest files disagreed.
    print(diff_manifests(base, fresh, names=(str(args.a), str(args.b))))
    return 0


def _cmd_obs_export(args: argparse.Namespace) -> int:
    if args.format == "prometheus":
        import json

        from .obs import RunManifest

        document = json.loads(Path(args.trace).read_text(encoding="utf-8"))
        if not isinstance(document, dict) or "metrics" not in document:
            raise ValueError(
                f"{args.trace} is not a run manifest (no metrics block); "
                "prometheus export needs a --metrics manifest, not a trace"
            )
        text = RunManifest.from_dict(document).to_prometheus()
        if args.out:
            Path(args.out).write_text(text, encoding="utf-8")
            print(f"wrote prometheus exposition to {args.out}")
        else:
            sys.stdout.write(text)
        return 0
    spans, document = load_trace(args.trace)
    resources = (document or {}).get("resources") or None
    out = args.out or str(Path(args.trace).with_suffix(f".{args.format}.json"))
    label = Path(args.trace).stem
    target = write_perfetto(spans, out, resources=resources, label=label)
    print(
        f"wrote {args.format} trace ({len(spans)} spans) to {target} "
        f"— open it at ui.perfetto.dev"
    )
    return 0


def _cmd_obs_tail(args: argparse.Namespace) -> int:
    import time
    import urllib.error
    import urllib.request

    from .obs import parse_exposition
    from .obs.inspect import render_tail_frame

    base = args.url.rstrip("/")

    def fetch(path: str) -> str:
        with urllib.request.urlopen(base + path, timeout=args.timeout) as response:
            return response.read().decode("utf-8")

    previous: dict | None = None
    previous_at: float | None = None
    frames = 0
    try:
        while True:
            import json

            try:
                health = json.loads(fetch("/health"))
            except (urllib.error.URLError, OSError, ValueError) as exc:
                print(f"-- {base} unreachable: {exc}", flush=True)
                health = None
            try:
                current = parse_exposition(fetch("/metrics"))
            except (urllib.error.URLError, OSError) as exc:
                print(f"-- scrape failed: {exc}", flush=True)
                current = None
            now = time.monotonic()
            if current is not None:
                elapsed = (now - previous_at) if previous_at is not None else 0.0
                print(
                    render_tail_frame(current, previous, elapsed, health=health),
                    flush=True,
                )
                previous, previous_at = current, now
            frames += 1
            if args.count is not None and frames >= args.count:
                return 0
            print(f"-- next scrape in {args.interval:g}s --", flush=True)
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_obs_history(args: argparse.Namespace) -> int:
    print(history(args.directory, max_commits=args.max_commits))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "k-clique communities in the Internet AS-level topology (ICDCS 2011 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_gen = sub.add_parser("generate", help="build and save a synthetic dataset")
    p_gen.add_argument("out", help="output directory")
    p_gen.add_argument("--profile", choices=["default", "tiny", "paper-scale"], default="default")
    p_gen.add_argument("--config", default=None, help="GeneratorConfig JSON (overrides --profile)")
    p_gen.add_argument("--seed", type=int, default=42)
    p_gen.set_defaults(func=_cmd_generate)

    p_com = sub.add_parser("communities", help="extract k-clique communities")
    p_com.add_argument("dataset", help="dataset directory or edge-list file")
    p_com.add_argument("--min-k", type=int, default=2)
    p_com.add_argument("--max-k", type=int, default=None)
    p_com.add_argument("--workers", type=int, default=1)
    p_com.add_argument("--members", action="store_true", help="print community members")
    _add_cpm_arguments(p_com)
    _add_obs_arguments(p_com)
    p_com.set_defaults(func=_cmd_communities)

    p_tree = sub.add_parser("tree", help="print the k-clique community tree")
    p_tree.add_argument("dataset", help="dataset directory or edge-list file")
    p_tree.add_argument("--format", choices=["ascii", "dot"], default="ascii")
    p_tree.add_argument("--max-children", type=int, default=8)
    p_tree.add_argument("--workers", type=int, default=1)
    p_tree.add_argument("--bands", action="store_true", help="colour DOT layers by band")
    p_tree.add_argument(
        "--analysis-engine",
        choices=list(ENGINES),
        default="bitset",
        help="metric engine for the Chapter-4 analyses (bitset fast path or set-based oracle)",
    )
    _add_cpm_arguments(p_tree)
    _add_obs_arguments(p_tree)
    p_tree.set_defaults(func=_cmd_tree)

    p_gml = sub.add_parser("graphml", help="export topology + communities as GraphML")
    p_gml.add_argument("dataset", help="dataset directory or edge-list file")
    p_gml.add_argument("out", help="output .graphml path")
    p_gml.add_argument("-k", type=int, default=4, help="order for membership attributes")
    p_gml.add_argument("--workers", type=int, default=1)
    p_gml.set_defaults(func=_cmd_graphml)

    p_paper = sub.add_parser("paper", help="regenerate the paper's tables and figures")
    p_paper.add_argument("--dataset", default=None, help="dataset directory (default: generate)")
    p_paper.add_argument("--seed", type=int, default=42)
    p_paper.add_argument("--workers", type=int, default=1)
    p_paper.add_argument("--html", default=None, help="write a standalone HTML report here")
    p_paper.add_argument("--csv-dir", default=None, help="write figure data as CSVs here")
    p_paper.add_argument(
        "--analysis-engine",
        choices=list(ENGINES),
        default="bitset",
        help="metric engine for the Chapter-4 analyses (bitset fast path or set-based oracle)",
    )
    _add_cpm_arguments(p_paper)
    _add_obs_arguments(p_paper)
    p_paper.set_defaults(func=_cmd_paper)

    p_stats = sub.add_parser("stats", help="structural statistics of a topology")
    p_stats.add_argument("dataset", help="dataset directory or edge-list file")
    p_stats.set_defaults(func=_cmd_stats)

    p_evolve = sub.add_parser("evolve", help="track communities over a growing topology")
    p_evolve.add_argument("--profile", choices=["default", "tiny"], default="tiny")
    p_evolve.add_argument("--seed", type=int, default=42)
    p_evolve.add_argument("--snapshots", type=int, default=5)
    p_evolve.add_argument("-k", type=int, default=4)
    p_evolve.add_argument(
        "--strategy", choices=["incremental", "replay"], default="incremental",
        help=(
            "cover extraction: one incremental session advanced by edge deltas "
            "(default) or an independent CPM run per snapshot; output is identical"
        ),
    )
    p_evolve.add_argument(
        "--incremental", action="store_true",
        help="shorthand for --strategy incremental",
    )
    p_evolve.set_defaults(func=_cmd_evolve)

    p_session = sub.add_parser(
        "session", help="open, mutate and inspect incremental CPM sessions"
    )
    session_sub = p_session.add_subparsers(dest="session_command", required=True)

    p_sopen = session_sub.add_parser(
        "open", help="run CPM once and persist the live session state"
    )
    p_sopen.add_argument("dataset", help="dataset directory or edge-list file")
    p_sopen.add_argument("session_dir", help="directory to persist the session into")
    _add_cpm_arguments(p_sopen)
    _add_obs_arguments(p_sopen)
    p_sopen.set_defaults(func=_cmd_session_open)

    p_sapply = session_sub.add_parser(
        "apply", help="apply an edge delta to a persisted session"
    )
    p_sapply.add_argument("session_dir", help="directory holding a saved session")
    p_sapply.add_argument(
        "--insert", action="append", metavar="U,V", default=[],
        help="insert one AS link (repeatable)",
    )
    p_sapply.add_argument(
        "--delete", action="append", metavar="U,V", default=[],
        help="delete one AS link (repeatable)",
    )
    p_sapply.add_argument(
        "--delta", default=None, metavar="PATH",
        help='JSON file {"insertions": [[u, v], ...], "deletions": [...]}',
    )
    _add_obs_arguments(p_sapply)
    p_sapply.set_defaults(func=_cmd_session_apply)

    p_sstatus = session_sub.add_parser(
        "status", help="show a persisted session's census and fingerprint"
    )
    p_sstatus.add_argument("session_dir", help="directory holding a saved session")
    p_sstatus.set_defaults(func=_cmd_session_status)

    p_atlas = sub.add_parser("atlas", help="per-IXP and per-country community profiles")
    p_atlas.add_argument("dataset", help="dataset directory or edge-list file")
    p_atlas.add_argument("--top", type=int, default=12)
    p_atlas.add_argument("--workers", type=int, default=1)
    p_atlas.set_defaults(func=_cmd_atlas)

    p_export = sub.add_parser("export", help="extract communities and save them as JSON")
    p_export.add_argument("dataset", help="dataset directory or edge-list file")
    p_export.add_argument("out", help="output JSON path")
    p_export.add_argument("--min-k", type=int, default=2)
    p_export.add_argument("--max-k", type=int, default=None)
    p_export.add_argument("--workers", type=int, default=1)
    _add_cpm_arguments(p_export)
    _add_obs_arguments(p_export)
    p_export.set_defaults(func=_cmd_export)

    p_query = sub.add_parser(
        "query", help="build, serve and query the community query artifact"
    )
    query_sub = p_query.add_subparsers(dest="query_command", required=True)

    p_qbuild = query_sub.add_parser(
        "build", help="run CPM once and freeze the hierarchy into a query artifact"
    )
    p_qbuild.add_argument("dataset", help="dataset directory or edge-list file")
    p_qbuild.add_argument("out", help="output artifact path (e.g. communities.rqa)")
    p_qbuild.add_argument("--min-k", type=int, default=2)
    p_qbuild.add_argument("--max-k", type=int, default=None)
    p_qbuild.add_argument("--workers", type=int, default=1)
    p_qbuild.add_argument(
        "--force", action="store_true",
        help=(
            "overwrite an existing artifact even when its stored graph "
            "fingerprint does not match this dataset"
        ),
    )
    p_qbuild.add_argument(
        "--analysis-engine",
        choices=list(ENGINES),
        default="bitset",
        help="metric engine that sweeps the frozen density/ODF table",
    )
    _add_cpm_arguments(p_qbuild)
    _add_obs_arguments(p_qbuild)
    p_qbuild.set_defaults(func=_cmd_query_build)

    p_qlookup = query_sub.add_parser(
        "lookup", help="point queries against a saved artifact (no CPM recompute)"
    )
    p_qlookup.add_argument("artifact", help="query artifact written by `repro query build`")
    p_qlookup.add_argument(
        "--info", action="store_true", help="print artifact metadata (fingerprint, bands)"
    )
    p_qlookup.add_argument(
        "--member", default=None, metavar="AS",
        help="communities containing this AS, per order k",
    )
    p_qlookup.add_argument(
        "--band", default=None, metavar="AS",
        help="crown/trunk/root band of this AS",
    )
    p_qlookup.add_argument(
        "--lca", nargs=2, default=None, metavar=("A", "B"),
        help="lowest common community of two ASes",
    )
    p_qlookup.add_argument(
        "--top", default=None, choices=list(TOP_METRICS),
        help="rank communities by this metric",
    )
    p_qlookup.add_argument(
        "--n", type=int, default=10, help="how many communities --top returns"
    )
    p_qlookup.add_argument(
        "-k", type=int, default=None, help="restrict --top to one order"
    )
    p_qlookup.add_argument(
        "--community", default=None, metavar="LABEL",
        help="one community's record by k<k>id<n> label",
    )
    p_qlookup.add_argument(
        "--members", action="store_true",
        help="expand the member list with --community",
    )
    _add_obs_arguments(p_qlookup)
    p_qlookup.set_defaults(func=_cmd_query_lookup)

    p_qserve = query_sub.add_parser(
        "serve", help="long-lived JSON lookup server over a saved artifact"
    )
    p_qserve.add_argument("artifact", help="query artifact written by `repro query build`")
    p_qserve.add_argument("--host", default="127.0.0.1")
    p_qserve.add_argument("--port", type=int, default=8091)
    p_qserve.add_argument(
        "--max-requests", type=int, default=None, metavar="N",
        help="shut down after N requests (smoke tests; default: serve forever)",
    )
    p_qserve.add_argument(
        "--serialize-requests", action="store_true",
        help=(
            "legacy mode: serve one request at a time under a global lock "
            "(benchmark baseline / concurrency bisection; not for production)"
        ),
    )
    _add_obs_arguments(p_qserve)
    p_qserve.set_defaults(func=_cmd_query_serve)

    p_obs = sub.add_parser(
        "obs", help="inspect observability artifacts (traces, manifests, bench history)"
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)

    p_view = obs_sub.add_parser(
        "view", help="render a trace (JSONL) or manifest as an ASCII span tree"
    )
    p_view.add_argument("trace", help="trace .jsonl or run-manifest .json file")
    p_view.add_argument(
        "--hot", type=int, default=3, metavar="N",
        help="flag the N spans with the largest self time (default 3)",
    )
    p_view.set_defaults(func=_cmd_obs_view)

    p_diff = obs_sub.add_parser(
        "diff", help="signed scalar deltas between two run manifests"
    )
    p_diff.add_argument("a", help="baseline manifest JSON")
    p_diff.add_argument("b", help="comparison manifest JSON")
    p_diff.set_defaults(func=_cmd_obs_diff)

    p_oexp = obs_sub.add_parser(
        "export", help="convert a trace to a standard viewer format"
    )
    p_oexp.add_argument("trace", help="trace .jsonl or run-manifest .json file")
    p_oexp.add_argument(
        "--format", choices=["perfetto", "prometheus"], default="perfetto",
        help=(
            "output format: Chrome/Perfetto trace-event JSON from a trace, "
            "or Prometheus text exposition from a manifest's metrics block"
        ),
    )
    p_oexp.add_argument(
        "--out", default=None, metavar="PATH",
        help="output path (default: <trace>.perfetto.json; prometheus prints to stdout)",
    )
    p_oexp.set_defaults(func=_cmd_obs_export)

    p_tail = obs_sub.add_parser(
        "tail", help="live per-endpoint rate/err/p99 view of a running query server"
    )
    p_tail.add_argument("url", help="server base URL, e.g. http://127.0.0.1:8091")
    p_tail.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="seconds between scrapes (default 2)",
    )
    p_tail.add_argument(
        "--count", type=int, default=None, metavar="N",
        help="stop after N frames (default: run until interrupted)",
    )
    p_tail.add_argument(
        "--timeout", type=float, default=5.0, metavar="SECONDS",
        help="per-request HTTP timeout (default 5)",
    )
    p_tail.set_defaults(func=_cmd_obs_tail)

    p_hist = obs_sub.add_parser(
        "history", help="bench scalar trajectories across committed BENCH manifests"
    )
    p_hist.add_argument(
        "directory", nargs="?", default="benchmarks/output",
        help="directory holding BENCH_*.json manifests (default benchmarks/output)",
    )
    p_hist.add_argument(
        "--max-commits", type=int, default=10, metavar="N",
        help="how many commits of history to walk (default 10)",
    )
    p_hist.set_defaults(func=_cmd_obs_history)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    User-input failures (missing files, malformed datasets) print one
    clean error line and return 2 instead of a traceback.
    """
    args = build_parser().parse_args(argv)
    log_target = getattr(args, "log_json", None)
    if log_target:
        logger = obs_logging.configure(log_target, command=args.command)
        logger.info("cli.start", argv=list(argv) if argv is not None else sys.argv[1:])
    try:
        code = args.func(args)
        if log_target:
            obs_logging.log_event("cli.exit", code=code)
        return code
    except (FileNotFoundError, NotADirectoryError) as exc:
        obs_logging.log_event("cli.error", level="error", error=str(exc))
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (KeyError, ValueError) as exc:
        obs_logging.log_event("cli.error", level="error", error=str(exc))
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into a pager/head that exited early; not an error.
        return 0
    finally:
        obs_logging.shutdown()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
