"""Nested spans over the CPM pipeline: wall time, CPU time, peak memory.

A :class:`Tracer` hands out context-manager :class:`Span`\\ s.  Spans
nest: entering a span while another is open records the parent link and
depth, so a trace reconstructs the call tree of a run
(``cpm.run`` → ``cpm.overlap`` → per-shard work, …).  Each closed span
becomes an immutable :class:`SpanRecord` carrying:

* wall-clock duration (``time.perf_counter``),
* process CPU time (``time.process_time``),
* peak traced allocation during the span (``tracemalloc``, opt-in via
  ``Tracer(memory=True)`` because tracing allocations costs 2–4x on
  allocation-heavy code — exactly the axis Baudin et al. (arXiv:
  2110.01213) identify as the CPM bottleneck, so it must be measurable
  but never always-on),
* the process high-water RSS (``resource.getrusage``, 0 where the
  platform lacks ``resource``),
* free-form attributes set by the instrumented code.

The default tracer everywhere in the library is :data:`NULL_TRACER`,
whose ``span()`` returns one shared do-nothing handle — the hot path
stays a dictionary lookup and a constant return, which the test-suite
bounds (``tests/test_obs.py``).
"""

from __future__ import annotations

import json
import threading
import time
import tracemalloc
from dataclasses import dataclass, field
from pathlib import Path

try:  # pragma: no cover - resource is POSIX-only
    import resource
except ImportError:  # pragma: no cover
    resource = None  # type: ignore[assignment]

__all__ = ["SpanRecord", "Span", "Tracer", "NullTracer", "NULL_TRACER"]


def max_rss_kib() -> int:
    """Process high-water resident set size in KiB (0 if unmeasurable).

    Linux reports ``ru_maxrss`` in KiB; this is a monotone high-water
    mark for the whole process, recorded on every span close so traces
    show *when* the footprint grew even though it never shrinks.
    """
    if resource is None:
        return 0
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


@dataclass(frozen=True)
class SpanRecord:
    """One closed span — a single line of the JSONL trace."""

    name: str
    span_id: int
    parent_id: int | None
    depth: int
    start_wall: float
    wall_seconds: float
    cpu_seconds: float
    peak_alloc_bytes: int
    max_rss_kib: int
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Plain-dict form of the record (JSON-serialisable)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "start_wall": self.start_wall,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "peak_alloc_bytes": self.peak_alloc_bytes,
            "max_rss_kib": self.max_rss_kib,
            "attrs": dict(self.attrs),
        }


class Span:
    """A live, open span; use as a context manager via ``Tracer.span``.

    >>> tracer = Tracer()
    >>> with tracer.span("phase", shards=4) as span:
    ...     span.set("pairs", 123)
    >>> tracer.records[0].attrs["pairs"]
    123
    """

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "depth", "attrs",
                 "_t0", "_c0", "_mem_peak")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = 0
        self.parent_id: int | None = None
        self.depth = 0
        self.attrs = attrs
        self._t0 = 0.0
        self._c0 = 0.0
        self._mem_peak = 0

    def set(self, key: str, value) -> None:
        """Attach (or overwrite) an attribute on the span."""
        self.attrs[key] = value

    def add(self, key: str, amount: int = 1) -> None:
        """Increment a numeric attribute (creating it at 0)."""
        self.attrs[key] = self.attrs.get(key, 0) + amount

    def __enter__(self) -> "Span":
        """Open the span: register with the tracer and start the clocks."""
        self._tracer._open(self)
        self._t0 = time.perf_counter()
        self._c0 = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Close the span and hand the finished record to the tracer.

        An exception unwinding through the span stamps an ``error``
        attribute (the exception type name) so a failed run's trace
        shows *where* it died, not just that spans stopped.
        """
        wall = time.perf_counter() - self._t0
        cpu = time.process_time() - self._c0
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._close(self, wall, cpu)


class Tracer:
    """Collects spans into an in-memory trace with optional memory sampling.

    ``memory=True`` starts :mod:`tracemalloc` (if not already running)
    and samples the allocation peak per span, folding child peaks into
    their parents so a parent's peak is never below any child's.

    The trace is exported with :meth:`write_jsonl` (one span per line)
    or embedded in a :class:`repro.obs.manifest.RunManifest`.
    """

    #: Whether spans from this tracer record anything (False on NullTracer).
    enabled = True

    def __init__(self, *, memory: bool = False) -> None:
        self.records: list[SpanRecord] = []
        self.memory = memory
        self._stack: list[Span] = []
        self._next_id = 0
        # Serialises concurrent absorb() calls (the query server grafts
        # per-request captures from many handler threads); the span
        # stack itself stays single-threaded — only grafting is shared.
        self._merge_lock = threading.Lock()
        self._started_tracemalloc = False
        if memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True

    def span(self, name: str, **attrs) -> Span:
        """A new span named ``name``; use as ``with tracer.span(...)``."""
        return Span(self, name, attrs)

    def close(self) -> None:
        """Finalise the trace: close dangling spans, stop tracemalloc.

        Any span still open (an exception path that bypassed its
        ``__exit__``, or code that entered spans manually) is closed
        with its measured elapsed time and a ``dangling`` marker, so a
        failed run still flushes a *complete* trace — every opened span
        has a record, parent links resolve, and ``write_jsonl`` emits
        valid lines.  Idempotent.
        """
        while self._stack:
            span = self._stack[-1]
            span.attrs.setdefault("dangling", True)
            wall = time.perf_counter() - span._t0
            cpu = time.process_time() - span._c0
            self._close(span, wall, cpu)
        if self._started_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._started_tracemalloc = False

    def __enter__(self) -> "Tracer":
        """Tracers are context managers: ``with Tracer() as tracer``."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Closing the context finalises the trace (see :meth:`close`)."""
        self.close()

    # ------------------------------------------------------------------
    # Span lifecycle (called by Span.__enter__/__exit__)
    # ------------------------------------------------------------------
    def _open(self, span: Span) -> None:
        span.span_id = self._next_id
        self._next_id += 1
        if self._stack:
            span.parent_id = self._stack[-1].span_id
            span.depth = len(self._stack)
        if self.memory:
            self._fold_segment_peak()
        span._mem_peak = 0
        self._stack.append(span)

    def _close(self, span: Span, wall: float, cpu: float) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        peak = span._mem_peak
        if self.memory:
            _, seg_peak = tracemalloc.get_traced_memory()
            peak = max(peak, seg_peak)
            tracemalloc.reset_peak()
            if self._stack:
                top = self._stack[-1]
                top._mem_peak = max(top._mem_peak, peak)
        self.records.append(
            SpanRecord(
                name=span.name,
                span_id=span.span_id,
                parent_id=span.parent_id,
                depth=span.depth,
                start_wall=span._t0,
                wall_seconds=wall,
                cpu_seconds=cpu,
                peak_alloc_bytes=peak,
                max_rss_kib=max_rss_kib(),
                attrs=span.attrs,
            )
        )

    def _fold_segment_peak(self) -> None:
        """Credit the allocation peak since the last boundary to the open span.

        Called at every span boundary so that ``tracemalloc.reset_peak``
        in a child never erases the peak the parent had already reached.
        """
        _, peak = tracemalloc.get_traced_memory()
        if self._stack:
            top = self._stack[-1]
            top._mem_peak = max(top._mem_peak, peak)
        tracemalloc.reset_peak()

    # ------------------------------------------------------------------
    # Grafting (worker telemetry)
    # ------------------------------------------------------------------
    def absorb(self, spans: list[dict], **extra_attrs) -> None:
        """Graft externally-recorded span dicts into this trace.

        ``spans`` is another tracer's :meth:`to_dicts` output (a worker
        process's capture, shipped back as plain dicts).  Every span is
        re-identified from this tracer's id sequence, root spans are
        parented under the currently open span (so worker subtrees hang
        off ``runner.supervise`` in the merged call tree), depths are
        rebased, and ``extra_attrs`` — ``pid``/``worker_id`` in the
        supervisor's case, ``request_id`` in the query server's — are
        stamped onto each record.

        Thread-safe: concurrent absorbs (per-request captures arriving
        from many handler threads) serialise on an internal lock, so
        id assignment and record appends never race.
        """
        if not spans:
            return
        with self._merge_lock:
            self._absorb_locked(spans, extra_attrs)

    def _absorb_locked(self, spans: list[dict], extra_attrs: dict) -> None:
        parent = self._stack[-1] if self._stack else None
        base_depth = len(self._stack)
        # Assign new ids for every incoming span up front: spans arrive
        # in closing order (children before parents), so parent links
        # must resolve against the full batch, not a running prefix.
        id_map: dict[int, int] = {}
        for record in spans:
            old_id = record.get("span_id")
            if old_id is not None and old_id not in id_map:
                id_map[old_id] = self._next_id
                self._next_id += 1
        for record in spans:
            old_id = record.get("span_id")
            if old_id is not None:
                new_id = id_map[old_id]
            else:
                new_id = self._next_id
                self._next_id += 1
            old_parent = record.get("parent_id")
            if old_parent is None or old_parent not in id_map:
                parent_id = parent.span_id if parent is not None else None
            else:
                parent_id = id_map[old_parent]
            attrs = dict(record.get("attrs", {}))
            attrs.update(extra_attrs)
            self.records.append(
                SpanRecord(
                    name=record.get("name", ""),
                    span_id=new_id,
                    parent_id=parent_id,
                    depth=base_depth + record.get("depth", 0),
                    start_wall=record.get("start_wall", 0.0),
                    wall_seconds=record.get("wall_seconds", 0.0),
                    cpu_seconds=record.get("cpu_seconds", 0.0),
                    peak_alloc_bytes=record.get("peak_alloc_bytes", 0),
                    max_rss_kib=record.get("max_rss_kib", 0),
                    attrs=attrs,
                )
            )

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_dicts(self) -> list[dict]:
        """Every closed span as a plain dict, in closing order."""
        return [record.to_dict() for record in self.records]

    def find(self, name: str) -> list[SpanRecord]:
        """All closed spans with the given name (empty list if none)."""
        return [record for record in self.records if record.name == name]

    def write_jsonl(self, path) -> Path:
        """Write the trace as JSON Lines (one span per line); returns the path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w", encoding="utf-8") as handle:
            for record in self.records:
                handle.write(json.dumps(record.to_dict(), default=repr) + "\n")
        return target


class _NullSpan:
    """The shared do-nothing span handle returned by :class:`NullTracer`."""

    __slots__ = ()

    def set(self, key: str, value) -> None:
        """No-op."""

    def add(self, key: str, amount: int = 1) -> None:
        """No-op."""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """A tracer that records nothing — the zero-overhead default.

    ``span()`` returns one shared constant object whose enter/exit/set
    are empty methods; no clocks are read, no records are kept, and
    tracemalloc is never started.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(memory=False)

    def span(self, name: str, **attrs) -> Span:
        """The shared no-op span, regardless of arguments."""
        return _NULL_SPAN  # type: ignore[return-value]

    def absorb(self, spans: list[dict], **extra_attrs) -> None:
        """No-op: a null trace never accumulates records."""


#: Module-level no-op tracer shared by all un-instrumented runs.
NULL_TRACER = NullTracer()
