"""Community sizes — Figure 4.3 (size of k-clique communities vs k).

Headline shapes from the paper:

* the main community at k = 2 is the entire Topology dataset (35,390
  ASes) and its size decreases rapidly as k grows;
* main size is comparable to parallel sizes only near the maximum k;
* the vast majority of parallel communities have size close to k
  (a handful of maximal cliques), so their size *floor* grows with k;
* parallel branches show locally decreasing size runs over the ranges
  where a nested branch loses members level by level.
"""

from __future__ import annotations

from dataclasses import dataclass

from .context import AnalysisContext

__all__ = ["SizePoint", "SizeAnalysis"]


@dataclass(frozen=True)
class SizePoint:
    """One marker of Figure 4.3."""

    k: int
    label: str
    size: int
    is_main: bool


class SizeAnalysis:
    """The Figure 4.3 scatter and its summary statements."""

    def __init__(self, context: AnalysisContext) -> None:
        self.context = context
        self.points = [
            SizePoint(k=row.k, label=row.label, size=row.size, is_main=row.is_main)
            for row in context.metrics_rows()
        ]

    def main_series(self) -> list[tuple[int, int]]:
        """(k, size) for the main chain, ascending k."""
        return sorted((p.k, p.size) for p in self.points if p.is_main)

    def parallel_points(self) -> list[tuple[int, int]]:
        """(k, size) for every parallel community."""
        return sorted((p.k, p.size) for p in self.points if not p.is_main)

    def main_is_monotone_nonincreasing(self) -> bool:
        """Main community size never grows with k (nesting theorem corollary)."""
        series = self.main_series()
        return all(b[1] <= a[1] for a, b in zip(series, series[1:]))

    def main_covers_graph_at_k2(self) -> bool:
        """The 2-clique main community spans the whole (connected) dataset."""
        series = dict(self.main_series())
        return series.get(2) == self.context.graph.number_of_nodes

    def parallel_size_ratio_stats(self) -> tuple[float, float]:
        """(mean, max) of parallel size / k.

        The paper: most parallel communities have size close to k.
        A mean near 1 confirms the 'few maximal cliques' reading.
        """
        ratios = [p.size / p.k for p in self.points if not p.is_main]
        if not ratios:
            return (0.0, 0.0)
        return (sum(ratios) / len(ratios), max(ratios))

    def crossover_k(self, *, factor: float = 2.0) -> int | None:
        """Smallest k where main size < factor * the largest parallel size.

        Locates where 'main size is comparable to parallel sizes'
        (the paper: only for k close to 36).
        """
        largest_parallel: dict[int, int] = {}
        for p in self.points:
            if not p.is_main:
                largest_parallel[p.k] = max(largest_parallel.get(p.k, 0), p.size)
        for k, size in sorted(dict(self.main_series()).items()):
            if k in largest_parallel and size < factor * largest_parallel[k]:
                return k
        return None
