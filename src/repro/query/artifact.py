"""The immutable community query artifact: build once, look up forever.

Every answer the paper's hierarchy can give — which communities contain
AS X at each order, the band of X, the lowest common community of two
ASes, the densest communities — is a pure function of the CPM output.
Today that output lives in a Python object graph that costs a full
``run_cpm`` + analysis sweep to materialise; a :class:`QueryArtifact`
is the same information serialised *once* into a packed, mmap-friendly
binary file so a long-lived server (``repro query serve``) answers
point queries in microseconds with **zero recompute**.

File layout (little-endian throughout)::

    magic "RQART" + u8 version        | identifies the format
    blake2b-128 digest of the payload | corruption check on load
    header: 14 x u64 section table    | offsets/lengths, counts
    meta JSON                         | graph fingerprint, band
                                      |   boundaries, orders, versions
    node table JSON                   | sorted node objects (int/str);
                                      |   position = dense node id
    community index                   | n_communities fixed 64-byte
                                      |   records (struct-packed)
    postings                          | per-node membership lists:
                                      |   (n_nodes+1) u64 offsets +
                                      |   u32 community ordinals
    top tables                        | 3 x n_communities u32 ordinals
                                      |   (by density / ODF / size)
    bitset blocks                     | per-community membership
                                      |   bitsets as u64 words

Each community index record stores ``(k, index, size, parent ordinal,
link density, average ODF, flags, bitset word offset, word count)``;
labels (``k<k>id<n>``) are derived, never stored.  Community ordinals
are global positions in ascending ``(k, index)`` order, so the paper's
tree (parent pointers, main-chain flags) round-trips without labels.

The *postings* section is the read path for membership/band/LCA
queries: one offset subtraction plus a contiguous u32 slice per node —
no bitset is touched.  The *bitset blocks* serve member expansion and
set-algebra queries; with ``mmap=True`` (the default in
:meth:`QueryArtifact.load`) they stay on disk until a query slices
them, so a server's resident set is the index, not the membership
matrix.

Keying: the meta block embeds the
:func:`~repro.obs.manifest.graph_fingerprint` of the source graph —
the same checksum the run manifests and the on-disk clique cache use —
so an artifact is verifiably *about* one input graph and stale
artifacts are detectable by comparing checksums, never by trusting
file names.
"""

from __future__ import annotations

import io
import json
import mmap as mmap_module
import struct
from array import array
from hashlib import blake2b
from os import PathLike
from pathlib import Path

from ..core.communities import CommunityHierarchy
from ..core.tree import CommunityTree
from ..obs.manifest import graph_fingerprint
from ..obs.metrics import MetricsRegistry
from ..obs.tracing import NULL_TRACER, Tracer

__all__ = ["ARTIFACT_VERSION", "ArtifactError", "BandSpec", "QueryArtifact", "build_artifact"]

#: Bumped on any layout change; a mismatch is a clean load error.
ARTIFACT_VERSION = 1

_MAGIC = b"RQART"
_DIGEST_SIZE = 16
#: magic + version byte + payload digest.
_PREAMBLE = struct.Struct(f"<5sB{_DIGEST_SIZE}s")
#: Section table: all u64 — n_nodes, n_communities, then offset/length
#: pairs for meta, nodes, index, postings, tops, bitsets.
_HEADER = struct.Struct("<14Q")
#: One community record: k, index (u32); size; parent ordinal (i64,
#: -1 for roots); density, ODF (f64); flags; bitset word offset/count.
_RECORD = struct.Struct("<IIQqddQQQ")

_FLAG_MAIN = 1


class ArtifactError(ValueError):
    """A query artifact failed to load: wrong format, truncated, corrupt."""


class BandSpec:
    """Crown/trunk/root boundaries carried inside the artifact.

    Mirrors :class:`repro.analysis.bands.BandBoundaries` (root =
    ``[min_k, root_max]``, crown = ``[crown_min, max_k]``) without
    importing the analysis layer at query time.
    """

    __slots__ = ("root_max", "crown_min")

    def __init__(self, root_max: int, crown_min: int) -> None:
        self.root_max = int(root_max)
        self.crown_min = int(crown_min)

    def band_of(self, k: int) -> str:
        """The band name (``root`` / ``trunk`` / ``crown``) of order ``k``."""
        if k <= self.root_max:
            return "root"
        if k < self.crown_min:
            return "trunk"
        return "crown"

    def to_dict(self) -> dict:
        """The boundaries as the mapping stored in the artifact meta."""
        return {"root_max": self.root_max, "crown_min": self.crown_min}


#: Paper fallback boundaries (Sections 4.1-4.3) used when no IXP-share
#: derivation is available — same values as ``derive_bands``'s fallback.
_DEFAULT_BANDS = (13, 29)


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise ArtifactError(message)


# ----------------------------------------------------------------------
# Building
# ----------------------------------------------------------------------
def build_artifact(
    hierarchy: CommunityHierarchy,
    *,
    tree: CommunityTree | None = None,
    graph=None,
    csr=None,
    table: dict[str, tuple[float, float]] | None = None,
    bands=None,
    fingerprint: dict | None = None,
    analysis_engine: str = "bitset",
    workers: int = 1,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> "QueryArtifact":
    """Assemble a :class:`QueryArtifact` from a community hierarchy.

    ``table`` maps each community label to its ``(link_density,
    average_odf)`` pair; when omitted it is swept by a
    :class:`~repro.analysis.engine.MetricsEngine` over ``graph``
    (reusing ``csr`` when the CPM run kept its snapshot), which is the
    memoized Chapter-4 metric table — the artifact freezes it.
    ``bands`` is anything with ``root_max``/``crown_min`` attributes
    (e.g. the IXP-share-derived
    :class:`~repro.analysis.bands.BandBoundaries`); without one the
    paper's fallback boundaries apply.  ``fingerprint`` defaults to
    the BLAKE2b fingerprint of ``graph``.

    The build runs inside a ``query.build`` span and emits
    ``query.build.*`` counters.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    registry = metrics if metrics is not None else MetricsRegistry()
    with tracer.span("query.build", engine=analysis_engine) as span:
        if tree is None:
            tree = CommunityTree(hierarchy, tracer=tracer, metrics=metrics)
        if table is None:
            if graph is None:
                raise ValueError("build_artifact needs either a metric table or a graph")
            from ..analysis.engine import MetricsEngine

            engine = MetricsEngine(
                hierarchy,
                tree,
                graph,
                engine=analysis_engine,
                csr=csr,
                workers=workers,
                tracer=tracer,
                metrics=metrics,
            )
            table = {
                row["label"]: (row["link_density"], row["average_odf"])
                for row in engine.export_table()["rows"]
            }
        if fingerprint is None and graph is not None:
            fingerprint = graph_fingerprint(graph)
        if bands is None:
            band_spec = BandSpec(*_DEFAULT_BANDS)
        else:
            band_spec = BandSpec(bands.root_max, bands.crown_min)
        artifact = QueryArtifact._from_objects(
            hierarchy, tree, table, band_spec, fingerprint or {}
        )
        span.set("communities", artifact.n_communities)
        span.set("nodes", artifact.n_nodes)
        registry.inc("query.build.communities", artifact.n_communities)
        registry.inc("query.build.nodes", artifact.n_nodes)
    return artifact


def _canonical_nodes(hierarchy: CommunityHierarchy) -> list:
    """Sorted union of all community member sets (the node universe).

    Only int/str nodes serialise (AS numbers are ints) — the same
    constraint as ``repro.core.serialize``; mixed types raise rather
    than producing an unloadable artifact.
    """
    universe: set = set()
    for cover in hierarchy.values():
        universe.update(cover.nodes())
    for node in universe:
        if not isinstance(node, (int, str)):
            raise TypeError(
                f"only int/str nodes serialise into a query artifact; "
                f"got {type(node).__name__}"
            )
    return sorted(universe)


# ----------------------------------------------------------------------
# The artifact
# ----------------------------------------------------------------------
class QueryArtifact:
    """The parsed (or mmapped) community query artifact.

    Construct via :func:`build_artifact` (from live objects) or
    :meth:`load` (from a file); :meth:`save` writes the packed form.
    All index sections are held as Python ``array`` objects after
    parsing; the bitset blocks stay behind ``memoryview``/``mmap`` and
    are sliced lazily per query.
    """

    def __init__(
        self,
        *,
        meta: dict,
        nodes: list,
        ks: array,
        indices: array,
        sizes: array,
        parents: array,
        densities: array,
        odfs: array,
        flags: array,
        word_offs: array,
        word_counts: array,
        post_offsets: array,
        postings: array,
        tops: dict[str, array],
        bit_view,
        mmap_handle=None,
    ) -> None:
        self.meta = meta
        self.nodes = nodes
        self._node_id = {node: i for i, node in enumerate(nodes)}
        self._ks = ks
        self._indices = indices
        self._sizes = sizes
        self._parents = parents
        self._densities = densities
        self._odfs = odfs
        self._flags = flags
        self._word_offs = word_offs
        self._word_counts = word_counts
        self._post_offsets = post_offsets
        self._postings = postings
        self._tops = tops
        self._bits = bit_view
        self._mmap = mmap_handle
        #: ordinal of the first community of each order, for label lookup.
        self._order_start: dict[int, int] = {}
        for ordinal, k in enumerate(ks):
            self._order_start.setdefault(k, ordinal)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def n_communities(self) -> int:
        return len(self._ks)

    @property
    def fingerprint(self) -> dict:
        """The source graph's fingerprint (nodes/edges/checksum)."""
        return dict(self.meta.get("fingerprint", {}))

    @property
    def bands(self) -> BandSpec:
        band = self.meta["bands"]
        return BandSpec(band["root_max"], band["crown_min"])

    @property
    def orders(self) -> list[int]:
        return list(self.meta["orders"])

    def label(self, ordinal: int) -> str:
        """The ``k<k>id<n>`` label of a community ordinal."""
        return f"k{self._ks[ordinal]}id{self._indices[ordinal]}"

    def ordinal(self, label: str) -> int:
        """The ordinal of a ``k<k>id<n>`` label (KeyError if absent)."""
        try:
            k_part, id_part = label.lstrip("k").split("id")
            k, index = int(k_part), int(id_part)
        except ValueError as exc:
            raise KeyError(f"malformed community label: {label!r}") from exc
        start = self._order_start.get(k)
        if start is None:
            raise KeyError(f"no community {label!r} in artifact")
        ordinal = start + index
        if ordinal >= len(self._ks) or self._ks[ordinal] != k:
            raise KeyError(f"no community {label!r} in artifact")
        return ordinal

    def node_id(self, node) -> int:
        """Dense id of a node object (KeyError if unknown)."""
        return self._node_id[node]

    def record(self, ordinal: int) -> dict:
        """One community's stored fields as a plain dict."""
        return {
            "label": self.label(ordinal),
            "k": self._ks[ordinal],
            "index": self._indices[ordinal],
            "size": self._sizes[ordinal],
            "parent": (
                self.label(self._parents[ordinal]) if self._parents[ordinal] >= 0 else None
            ),
            "link_density": self._densities[ordinal],
            "average_odf": self._odfs[ordinal],
            "is_main": bool(self._flags[ordinal] & _FLAG_MAIN),
        }

    def postings_of(self, node_id: int) -> array:
        """Community ordinals containing a node id, ascending (k, index)."""
        start = self._post_offsets[node_id]
        stop = self._post_offsets[node_id + 1]
        return self._postings[start:stop]

    def member_bitset(self, ordinal: int) -> int:
        """The membership bitset of a community (bit i = node id i)."""
        off = self._word_offs[ordinal] * 8
        length = self._word_counts[ordinal] * 8
        return int.from_bytes(self._bits[off : off + length], "little")

    def members(self, ordinal: int) -> list:
        """The member node objects of a community, sorted."""
        mask = self.member_bitset(ordinal)
        nodes = self.nodes
        out = []
        while mask:
            low = mask & -mask
            out.append(nodes[low.bit_length() - 1])
            mask ^= low
        return out

    def top_ordinals(self, metric: str) -> array:
        """All ordinals sorted descending by ``density``/``odf``/``size``."""
        try:
            return self._tops[metric]
        except KeyError:
            raise KeyError(
                f"unknown top metric {metric!r}; expected one of {sorted(self._tops)}"
            ) from None

    def close(self) -> None:
        """Release the mmap (no-op for in-memory artifacts). Idempotent."""
        if self._mmap is not None:
            bits = self._bits
            self._bits = bytes(bits)  # detach before unmapping
            del bits
            self._mmap.close()
            self._mmap = None

    # ------------------------------------------------------------------
    # Packing
    # ------------------------------------------------------------------
    @classmethod
    def _from_objects(
        cls,
        hierarchy: CommunityHierarchy,
        tree: CommunityTree,
        table: dict[str, tuple[float, float]],
        bands: BandSpec,
        fingerprint: dict,
    ) -> "QueryArtifact":
        nodes = _canonical_nodes(hierarchy)
        node_id = {node: i for i, node in enumerate(nodes)}
        n_words = (len(nodes) + 63) >> 6

        ks = array("I")
        indices = array("I")
        sizes = array("Q")
        parents = array("q")
        densities = array("d")
        odfs = array("d")
        flags = array("Q")
        word_offs = array("Q")
        word_counts = array("Q")
        bit_chunks: list[bytes] = []
        posting_lists: list[list[int]] = [[] for _ in nodes]

        ordinal_of: dict[str, int] = {}
        communities = list(hierarchy.all_communities())
        for ordinal, community in enumerate(communities):
            ordinal_of[community.label] = ordinal
        word_cursor = 0
        for ordinal, community in enumerate(communities):
            label = community.label
            density, odf = table[label]
            parent_node = tree.node(label).parent
            ks.append(community.k)
            indices.append(community.index)
            sizes.append(community.size)
            parents.append(ordinal_of[parent_node.label] if parent_node else -1)
            densities.append(density)
            odfs.append(odf)
            flags.append(_FLAG_MAIN if tree.is_main(label) else 0)
            mask = 0
            for member in community.members:
                i = node_id[member]
                mask |= 1 << i
                posting_lists[i].append(ordinal)
            word_offs.append(word_cursor)
            word_counts.append(n_words)
            word_cursor += n_words
            bit_chunks.append(mask.to_bytes(n_words * 8, "little"))

        post_offsets = array("Q", [0])
        postings = array("I")
        for ordinals in posting_lists:
            postings.extend(ordinals)
            post_offsets.append(len(postings))

        tops = {
            "density": _ranked(densities, ks, indices),
            "odf": _ranked(odfs, ks, indices),
            "size": _ranked(sizes, ks, indices),
        }
        meta = {
            "format": "repro.query-artifact",
            "version": ARTIFACT_VERSION,
            "fingerprint": dict(fingerprint),
            "bands": bands.to_dict(),
            "orders": hierarchy.orders,
            "min_k": hierarchy.min_k,
            "max_k": hierarchy.max_k,
            "n_nodes": len(nodes),
            "n_communities": len(communities),
            "bitset_words_per_community": n_words,
        }
        return cls(
            meta=meta,
            nodes=nodes,
            ks=ks,
            indices=indices,
            sizes=sizes,
            parents=parents,
            densities=densities,
            odfs=odfs,
            flags=flags,
            word_offs=word_offs,
            word_counts=word_counts,
            post_offsets=post_offsets,
            postings=postings,
            tops=tops,
            bit_view=b"".join(bit_chunks),
        )

    def _payload(self) -> bytes:
        """The packed sections after the preamble, ready to digest."""
        meta_blob = json.dumps(self.meta, sort_keys=True).encode("utf-8")
        nodes_blob = json.dumps(self.nodes).encode("utf-8")
        index_blob = bytearray()
        for ordinal in range(self.n_communities):
            index_blob += _RECORD.pack(
                self._ks[ordinal],
                self._indices[ordinal],
                self._sizes[ordinal],
                self._parents[ordinal],
                self._densities[ordinal],
                self._odfs[ordinal],
                self._flags[ordinal],
                self._word_offs[ordinal],
                self._word_counts[ordinal],
            )
        post_blob = self._post_offsets.tobytes() + self._postings.tobytes()
        tops_blob = (
            self._tops["density"].tobytes()
            + self._tops["odf"].tobytes()
            + self._tops["size"].tobytes()
        )
        bits_blob = bytes(self._bits)

        sections = [meta_blob, nodes_blob, bytes(index_blob), post_blob, tops_blob, bits_blob]
        cursor = _PREAMBLE.size + _HEADER.size
        table: list[int] = [self.n_nodes, self.n_communities]
        for blob in sections:
            table.extend((cursor, len(blob)))
            cursor += len(blob)
        return _HEADER.pack(*table) + b"".join(sections)

    def save(self, path: str | PathLike) -> Path:
        """Write the packed artifact; returns the path."""
        payload = self._payload()
        digest = blake2b(payload, digest_size=_DIGEST_SIZE).digest()
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("wb") as handle:
            handle.write(_PREAMBLE.pack(_MAGIC, ARTIFACT_VERSION, digest))
            handle.write(payload)
        return target

    @classmethod
    def load(
        cls, path: str | PathLike, *, mmap: bool = True, verify: bool = True
    ) -> "QueryArtifact":
        """Read a saved artifact back, mmapping the file by default.

        ``verify=True`` (default) recomputes the payload digest and
        refuses corrupt bytes; truncated or foreign files raise
        :class:`ArtifactError` either way.  With ``mmap=True`` the
        bitset blocks are never copied into memory — queries slice the
        mapping directly.
        """
        target = Path(path)
        try:
            handle = target.open("rb")
        except OSError as exc:
            raise ArtifactError(f"cannot open query artifact {target}: {exc}") from exc
        mm = None
        try:
            if mmap:
                try:
                    mm = mmap_module.mmap(handle.fileno(), 0, access=mmap_module.ACCESS_READ)
                    buffer = memoryview(mm)
                except (ValueError, OSError):  # empty file or no-mmap FS
                    handle.seek(0)
                    buffer = memoryview(handle.read())
                    mm = None
            else:
                buffer = memoryview(handle.read())
        finally:
            handle.close()
        try:
            return cls._parse(buffer, mm, target, verify=verify)
        except BaseException:
            del buffer
            if mm is not None:
                try:
                    mm.close()
                except BufferError:
                    # The in-flight exception's traceback still pins
                    # memoryview slices of the mapping; GC unmaps it
                    # once the exception is handled.
                    pass
            raise

    @classmethod
    def _parse(cls, buffer, mm, target: Path, *, verify: bool) -> "QueryArtifact":
        _check(
            len(buffer) >= _PREAMBLE.size + _HEADER.size,
            f"{target} is not a query artifact (file too small)",
        )
        magic, version, digest = _PREAMBLE.unpack_from(buffer, 0)
        _check(magic == _MAGIC, f"{target} is not a query artifact (bad magic)")
        _check(
            version == ARTIFACT_VERSION,
            f"{target} has artifact version {version}, expected {ARTIFACT_VERSION}",
        )
        if verify:
            actual = blake2b(buffer[_PREAMBLE.size :], digest_size=_DIGEST_SIZE).digest()
            _check(
                actual == digest,
                f"{target} failed its integrity check (corrupt or truncated)",
            )
        header = _HEADER.unpack_from(buffer, _PREAMBLE.size)
        n_nodes, n_communities = header[0], header[1]
        spans = list(zip(header[2::2], header[3::2]))
        for off, length in spans:
            _check(
                off + length <= len(buffer),
                f"{target} is truncated (section [{off}, {off + length}) "
                f"past end of file {len(buffer)})",
            )
        (meta_s, nodes_s, index_s, post_s, tops_s, bits_s) = spans

        def section(span):
            off, length = span
            return buffer[off : off + length]

        try:
            meta = json.loads(bytes(section(meta_s)))
            nodes = json.loads(bytes(section(nodes_s)))
        except json.JSONDecodeError as exc:
            raise ArtifactError(f"{target} has an unreadable meta section: {exc}") from exc
        _check(len(nodes) == n_nodes, f"{target} node table disagrees with header")
        _check(
            index_s[1] == n_communities * _RECORD.size,
            f"{target} community index disagrees with header",
        )

        ks = array("I")
        indices = array("I")
        sizes = array("Q")
        parents = array("q")
        densities = array("d")
        odfs = array("d")
        flags = array("Q")
        word_offs = array("Q")
        word_counts = array("Q")
        for record in _RECORD.iter_unpack(section(index_s)):
            ks.append(record[0])
            indices.append(record[1])
            sizes.append(record[2])
            parents.append(record[3])
            densities.append(record[4])
            odfs.append(record[5])
            flags.append(record[6])
            word_offs.append(record[7])
            word_counts.append(record[8])

        post_blob = section(post_s)
        offsets_bytes = (n_nodes + 1) * 8
        _check(
            len(post_blob) >= offsets_bytes,
            f"{target} postings section disagrees with header",
        )
        post_offsets = array("Q")
        post_offsets.frombytes(bytes(post_blob[:offsets_bytes]))
        postings = array("I")
        postings.frombytes(bytes(post_blob[offsets_bytes:]))
        _check(
            len(postings) == (post_offsets[-1] if len(post_offsets) else 0),
            f"{target} postings list disagrees with its offsets",
        )

        tops_blob = section(tops_s)
        _check(
            len(tops_blob) == 3 * n_communities * 4,
            f"{target} top tables disagree with header",
        )
        tops = {}
        for slot, metric in enumerate(("density", "odf", "size")):
            chunk = array("I")
            chunk.frombytes(
                bytes(tops_blob[slot * n_communities * 4 : (slot + 1) * n_communities * 4])
            )
            tops[metric] = chunk

        return cls(
            meta=meta,
            nodes=nodes,
            ks=ks,
            indices=indices,
            sizes=sizes,
            parents=parents,
            densities=densities,
            odfs=odfs,
            flags=flags,
            word_offs=word_offs,
            word_counts=word_counts,
            post_offsets=post_offsets,
            postings=postings,
            tops=tops,
            bit_view=section(bits_s),
            mmap_handle=mm,
        )

    def to_bytes(self) -> bytes:
        """The full packed file as bytes (preamble + payload)."""
        buffer = io.BytesIO()
        payload = self._payload()
        digest = blake2b(payload, digest_size=_DIGEST_SIZE).digest()
        buffer.write(_PREAMBLE.pack(_MAGIC, ARTIFACT_VERSION, digest))
        buffer.write(payload)
        return buffer.getvalue()

    def __repr__(self) -> str:
        return (
            f"QueryArtifact(nodes={self.n_nodes}, communities={self.n_communities}, "
            f"k=[{self.meta.get('min_k')}..{self.meta.get('max_k')}])"
        )


def _ranked(values, ks: array, indices: array) -> array:
    """Ordinals sorted by descending value, ties by (k, index)."""
    order = sorted(
        range(len(values)), key=lambda o: (-values[o], ks[o], indices[o])
    )
    return array("I", order)
