"""Greedy Clique Expansion baseline ([18] Lee, Reid, McDaid, Hurley).

GCE seeds communities with maximal cliques and greedily expands each
seed by the node that most improves the fitness

    F(S) = k_in(S) / (k_in(S) + k_out(S))^alpha

where k_in is twice the number of internal edges and k_out the number
of boundary edges.  Near-duplicate grown communities are discarded.

The paper *rejects* GCE for the AS-level graph because this fitness
"searches for sub-graphs where nodes have more internal connections
than external connections" — a property Internet communities (regional
transit meshes, the Tier-1 clique) do not have.  We implement it
anyway: the baseline-contrast benchmark demonstrates the rejection
empirically by showing GCE refuses to grow (or outright loses) the
Tier-1-mesh-like communities CPM finds.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass

from ..core.cliques import maximal_cliques
from ..graph.undirected import Graph

__all__ = ["GCEConfig", "greedy_clique_expansion"]


@dataclass(frozen=True)
class GCEConfig:
    """GCE parameters (defaults follow the reference implementation)."""

    min_clique_size: int = 4
    alpha: float = 1.0
    #: Overlap fraction above which a grown community is a duplicate.
    dedupe_eta: float = 0.6


def _fitness(graph: Graph, members: set[Hashable], alpha: float) -> float:
    k_in = 2 * graph.edge_count_within(members)
    k_out = sum(graph.degree(n) for n in members) - k_in
    if k_in + k_out == 0:
        return 0.0
    return k_in / (k_in + k_out) ** alpha


def _expand(graph: Graph, seed: frozenset, alpha: float) -> frozenset:
    members = set(seed)
    current = _fitness(graph, members, alpha)
    while True:
        frontier: set[Hashable] = set()
        for node in members:
            frontier |= graph.neighbors(node)
        frontier -= members
        best_node, best_fitness = None, current
        for node in frontier:
            members.add(node)
            fitness = _fitness(graph, members, alpha)
            members.remove(node)
            if fitness > best_fitness:
                best_node, best_fitness = node, fitness
        if best_node is None:
            return frozenset(members)
        members.add(best_node)
        current = best_fitness


def greedy_clique_expansion(
    graph: Graph, config: GCEConfig | None = None
) -> list[frozenset]:
    """Run GCE; returns grown communities, largest first.

    Seeds are processed largest-clique-first; a grown community whose
    membership is mostly covered by an already-accepted community
    (Jaccard-style containment above ``dedupe_eta``) is dropped.
    """
    config = config or GCEConfig()
    seeds = sorted(
        maximal_cliques(graph, min_size=config.min_clique_size),
        key=lambda c: (-len(c), tuple(sorted(map(repr, c)))),
    )
    accepted: list[frozenset] = []
    for seed in seeds:
        grown = _expand(graph, seed, config.alpha)
        duplicate = any(
            len(grown & other) / len(grown) >= config.dedupe_eta for other in accepted
        )
        if not duplicate:
            accepted.append(grown)
    accepted.sort(key=len, reverse=True)
    return accepted
