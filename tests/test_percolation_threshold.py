"""Unit tests for the k-clique percolation phase-transition module."""

import pytest

from repro.analysis import critical_probability, empirical_threshold, threshold_sweep
from repro.analysis.percolation_threshold import SweepPoint


class TestCriticalProbability:
    def test_formula(self):
        # p_c = [(k-1) n]^(-1/(k-1))
        assert critical_probability(100, 2) == pytest.approx(1 / 100)
        assert critical_probability(100, 3) == pytest.approx((2 * 100) ** -0.5)

    def test_decreases_with_n(self):
        assert critical_probability(1000, 3) < critical_probability(100, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            critical_probability(100, 1)
        with pytest.raises(ValueError):
            critical_probability(2, 3)


class TestSweep:
    @pytest.fixture(scope="class")
    def points(self):
        return threshold_sweep(
            n=120, k=3, relative_ps=[0.5, 0.8, 1.0, 1.3, 1.8], trials=2, seed=5
        )

    def test_order_parameter_grows_through_transition(self, points):
        shares = [p.largest_community_share for p in points]
        assert shares[0] < 0.1           # subcritical: microscopic
        assert shares[-1] > 0.6          # supercritical: giant community

    def test_transition_near_theory(self, points):
        threshold = empirical_threshold(points, share=0.2)
        assert threshold is not None
        assert 0.8 <= threshold <= 1.8   # finite-size window around p/p_c = 1

    def test_point_fields(self, points):
        for point in points:
            assert isinstance(point, SweepPoint)
            assert 0.0 <= point.largest_community_share <= 1.0
            assert point.p <= 1.0

    def test_deterministic(self):
        a = threshold_sweep(n=60, k=3, relative_ps=[1.0], trials=2, seed=9)
        b = threshold_sweep(n=60, k=3, relative_ps=[1.0], trials=2, seed=9)
        assert a == b

    def test_empirical_threshold_none_when_subcritical(self):
        points = [SweepPoint(p=0.01, relative_p=0.5, largest_community_share=0.01, n_communities=2)]
        assert empirical_threshold(points, share=0.5) is None
