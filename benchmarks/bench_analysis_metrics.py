"""Analysis-engine sweep vs the replaced per-analysis metric path.

Before the engine existed, every Chapter-4 analysis recomputed its own
metrics: ``DensityOdfAnalysis`` called the set-based oracle per
community (one member-set copy plus a node-by-node ``degree_within``
loop per metric), ``OverlapAnalysis.__init__`` enumerated every
parallel pair per order through :meth:`Community.overlap_fraction`, and
the findings (b)/(c) re-enumerated *all* those pairs again from
scratch.  This bench replicates that replaced path verbatim
(``_legacy_metric_path``) and times it against the one-pass
:class:`~repro.analysis.engine.MetricsEngine` sweep — bitset mode (CSR
reuse, popcounts, dedup memo, exact shortcuts) and set mode (same
orchestration, oracle arithmetic).

All three paths must agree exactly; the equality asserts here repeat
the ``tests/test_analysis_engine_equivalence.py`` guarantee on the
bench topology before any number is recorded.

Persisted measurements (``BENCH_*.json`` config, gated by
``check_bench_regression.py``): ``analysis_seconds_{bitset,set,legacy}``
are single-sweep minima; the ``*_x10`` variants are 10-sweep sums that
clear the gate's tiny-baseline floor (0.05 s) so the trajectory is
actually enforced; ``analysis_speedup_*`` record the headline ratios.
The engine's ``analysis.sweep`` span and ``analysis.*`` counters land
in the manifest via ``bench_tracer`` / ``bench_metrics``.
"""

from __future__ import annotations

import statistics
import time
from itertools import combinations

from repro.analysis.engine import MetricsEngine
from repro.core.metrics import average_odf, link_density
from repro.report.figures import ascii_table

_REPS = 10


def _legacy_metric_path(context):
    """The pre-engine computation, replicated verbatim.

    Per-community oracle calls with the member-set copy the old
    ``core/metrics.py`` made (``list(...)`` forces it), the per-order
    pairwise overlap loop of the old ``OverlapAnalysis.__init__``, and
    the twice-enumerated findings (b)/(c) scans.
    """
    graph = context.graph
    tree = context.tree
    hierarchy = context.hierarchy
    points = [
        (
            c.k,
            c.label,
            c.size,
            link_density(graph, list(c.members)),
            average_odf(graph, list(c.members)),
            tree.is_main(c),
        )
        for c in hierarchy.all_communities()
    ]
    rows = []
    for k in hierarchy.orders:
        cover = hierarchy[k]
        if len(cover) < 2:
            continue
        main = tree.main_community(k)
        parallels = [c for c in cover if c.label != main.label]
        main_fracs = [p.overlap_fraction(main) for p in parallels]
        pp_fracs = [a.overlap_fraction(b) for a, b in combinations(parallels, 2)]
        rows.append(
            (
                k,
                len(parallels),
                statistics.mean(main_fracs),
                sum(1 for f in main_fracs if f == 0.0),
                statistics.mean(pp_fracs) if pp_fracs else None,
            )
        )
    disjoint = False
    strong = 0
    for k in hierarchy.orders:
        parallels = tree.parallel_communities(k)
        for a, b in combinations(parallels, 2):
            if a.overlap(b) == 0:
                disjoint = True
            if a.overlap_fraction(b) >= 0.5:
                strong += 1
    return points, rows, disjoint, strong


def _engine_metric_path(context, mode, tracer=None, metrics=None):
    """The engine path: one sweep, then table scans for the findings."""
    engine = MetricsEngine(
        context.hierarchy,
        context.tree,
        context.graph,
        engine=mode,
        csr=context.csr,
        tracer=tracer,
        metrics=metrics,
    )
    engine_rows = engine.rows()
    points = [
        (r.k, r.label, r.size, r.link_density, r.average_odf, r.is_main)
        for r in engine_rows
    ]
    rows = []
    disjoint = False
    strong = 0
    overlaps = engine.order_overlaps()
    for k in context.hierarchy.orders:
        order = overlaps.get(k)
        if order is None:
            continue
        main_fracs = order.main_fractions
        pp_fracs = order.pair_fractions
        rows.append(
            (
                k,
                len(order.parallel_labels),
                statistics.mean(main_fracs),
                sum(1 for f in main_fracs if f == 0.0),
                statistics.mean(pp_fracs) if pp_fracs else None,
            )
        )
        disjoint = disjoint or any(f == 0.0 for f in pp_fracs)
        strong += sum(1 for f in pp_fracs if f >= 0.5)
    return points, rows, disjoint, strong


def _time_path(fn, reps=_REPS):
    """(best single wall time, total over ``reps``) of ``fn()``."""
    best = float("inf")
    total = 0.0
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        total += elapsed
    return best, total


def test_analysis_metrics_sweep(
    benchmark, context, emit, bench_record, bench_tracer, bench_metrics
):
    # Exactness first: all three paths must produce the same numbers on
    # the bench topology, or the timings compare different computations.
    legacy = _legacy_metric_path(context)
    bitset = _engine_metric_path(context, "bitset", bench_tracer, bench_metrics)
    set_based = _engine_metric_path(context, "set")
    assert bitset == legacy
    assert set_based == legacy

    timings = {}
    for name, fn in (
        ("bitset", lambda: _engine_metric_path(context, "bitset")),
        ("set", lambda: _engine_metric_path(context, "set")),
        ("legacy", lambda: _legacy_metric_path(context)),
    ):
        best, total = _time_path(fn)
        timings[name] = (best, total)
        bench_record[f"analysis_seconds_{name}"] = round(best, 4)
        bench_record[f"analysis_seconds_{name}_x10"] = round(total, 4)
    bench_record["analysis_speedup_vs_legacy"] = round(
        timings["legacy"][0] / timings["bitset"][0], 2
    )
    bench_record["analysis_speedup_vs_set"] = round(
        timings["set"][0] / timings["bitset"][0], 2
    )

    # The timed target for pytest-benchmark: the bitset sweep.
    benchmark(lambda: _engine_metric_path(context, "bitset"))

    table = ascii_table(
        ["path", "best (ms)", "x10 total (ms)", "speedup vs legacy"],
        [
            [
                name,
                round(best * 1000, 2),
                round(total * 1000, 2),
                round(timings["legacy"][0] / best, 2),
            ]
            for name, (best, total) in timings.items()
        ],
        title="Chapter-4 metric sweep: engine vs replaced per-analysis path",
    )
    emit("analysis_metrics_sweep", table)

    # The engine must beat the path it replaced by a wide margin.
    assert timings["legacy"][0] > 2.0 * timings["bitset"][0]
