"""Tests for IXP-share, geography and crown/trunk/root band analyses."""

import pytest

from repro.analysis import (
    GeoAnalysis,
    IXPShareAnalysis,
    common_continents,
    common_countries,
    crown_report,
    derive_bands,
    root_report,
    trunk_report,
)
from repro.topology import GeoRegistry
from repro.topology.geography import Continent


@pytest.fixture(scope="module")
def ixp_share(default_context):
    return IXPShareAnalysis(default_context)


@pytest.fixture(scope="module")
def bands(ixp_share):
    return derive_bands(ixp_share)


@pytest.fixture(scope="module")
def geo(default_context):
    return GeoAnalysis(default_context)


class TestIXPShare:
    def test_record_per_community(self, ixp_share, default_context):
        assert len(ixp_share.records) == default_context.hierarchy.total_communities

    def test_high_k_communities_mostly_on_ixp(self, ixp_share):
        """Paper: > 90% on-IXP members for every community with k >= 16."""
        threshold = ixp_share.high_on_ixp_threshold(fraction=0.9)
        assert threshold is not None
        assert threshold <= 16

    def test_full_share_communities_exist(self, ixp_share):
        full = ixp_share.full_share_communities()
        assert len(full) > 10
        # Full shares appear at both ends of the k range, not the middle.
        orders = ixp_share.full_share_orders()
        assert min(orders) <= 8
        assert max(orders) >= 25

    def test_no_full_share_band_exists(self, ixp_share):
        gap = ixp_share.no_full_share_band()
        assert gap is not None
        lo, hi = gap
        assert lo < hi
        for record in ixp_share.records:
            if lo <= record.k <= hi:
                assert not record.has_full_share

    def test_crown_max_share_names(self, ixp_share, default_context):
        """Paper: crown max-share IXPs are exactly the big three."""
        names = ixp_share.max_share_names_from(default_context.hierarchy.max_k - 6)
        assert names == {"AMS-IX", "DE-CIX", "LINX"}

    def test_record_lookup(self, ixp_share):
        record = ixp_share.record("k2id0")
        assert record.k == 2
        with pytest.raises(KeyError):
            ixp_share.record("k99id99")


class TestGeoHelpers:
    def test_common_countries(self):
        reg = GeoRegistry({1: ["IT"], 2: ["IT", "FR"], 3: ["IT", "US"]})
        assert common_countries(reg, {1, 2, 3}) == {"IT"}
        assert common_countries(reg, {2, 3}) == {"IT"}

    def test_unknown_member_blocks_containment(self):
        reg = GeoRegistry({1: ["IT"]})
        assert common_countries(reg, {1, 99}) == frozenset()

    def test_disjoint_members(self):
        reg = GeoRegistry({1: ["IT"], 2: ["JP"]})
        assert common_countries(reg, {1, 2}) == frozenset()

    def test_common_continents(self):
        reg = GeoRegistry({1: ["IT"], 2: ["FR", "US"]})
        assert common_continents(reg, {1, 2}) == {Continent.EUROPE}


class TestGeoAnalysis:
    def test_records_per_community(self, geo, default_context):
        assert len(geo.records) == default_context.hierarchy.total_communities

    def test_root_communities_often_country_contained(self, geo, bands):
        """Paper: 382 of the root communities are country-contained."""
        contained = geo.country_contained(k_max=bands.root_max, parallel_only=True)
        assert len(contained) > 50

    def test_crown_is_european(self, geo, default_context):
        k_min = default_context.hierarchy.max_k - 6
        fraction = geo.continent_membership_fraction(Continent.EUROPE, k_min=k_min)
        assert fraction > 0.85
        exceptions = geo.non_continent_members(Continent.EUROPE, k_min=k_min)
        assert len(exceptions) == 4  # paper: exactly four non-EU crown ASes


class TestBands:
    def test_three_band_structure(self, bands, default_context):
        assert 2 < bands.root_max < bands.crown_min <= default_context.hierarchy.max_k
        assert bands.band_of(2) == "root"
        assert bands.band_of(bands.root_max + 1) == "trunk"
        assert bands.band_of(default_context.hierarchy.max_k) == "crown"

    def test_fallback_when_no_regimes(self, tiny_context):
        share = IXPShareAnalysis(tiny_context)
        boundaries = derive_bands(share, fallback=(5, 9))
        assert boundaries.root_max >= 2

    def test_crown_report_claims(self, default_context, ixp_share, bands):
        report = crown_report(default_context, ixp_share, bands)
        assert report.n_communities > 5
        # Apex: AMS-IX max share, high but not full (paper: 89%).
        assert report.apex_max_share_ixp == "AMS-IX"
        assert 0.8 <= report.apex_max_share_fraction < 1.0
        assert not report.apex_has_full_share
        assert not report.main_has_full_share
        assert report.max_share_ixps == {"AMS-IX", "DE-CIX", "LINX"}
        assert len(report.non_european_members) == 4
        assert len(report.non_ixp_members) == 3
        # Case study: main + full-share parallels at one order.
        assert report.case_study_k is not None
        mains = [row for row in report.case_study if row[4]]
        parallels = [row for row in report.case_study if not row[4]]
        assert len(mains) == 1
        assert parallels
        assert any(row[3] for row in parallels)  # some parallel is full-share

    def test_trunk_report_claims(self, default_context, ixp_share, bands):
        report = trunk_report(default_context, ixp_share, bands)
        assert report.n_communities > 5
        assert not report.any_full_share  # defining property of the band
        assert report.min_on_ixp_fraction > 0.8
        assert report.parallel_max_share_min is not None
        assert report.parallel_max_share_min > 0.9  # paper: > 95% for MSK-IX
        # Trunk members are the high-degree provider stratum.
        assert report.mean_member_degree > 20
        assert report.worldwide_or_continental_fraction > 0.2
        # The MSK-IX-style nested branch.
        assert len(report.longest_branch) >= 3
        branch_ixps = {ixp for _, _, ixp in report.longest_branch}
        assert len(branch_ixps) == 1  # whole branch shares one max-share IXP

    def test_root_report_claims(self, default_context, ixp_share, bands, geo):
        report = root_report(default_context, ixp_share, bands, geo)
        assert report.n_communities > 100
        # Paper: average parallel size 5.09 — small.
        assert report.mean_parallel_size < 15
        assert report.full_share_parallels >= 10
        # Paper: several full-share IXPs, some outside Europe.
        assert len(report.full_share_ixp_countries) >= 5
        assert report.non_european_full_share_exists
        assert report.country_contained_parallels > 50
