"""End-to-end integration: the paper's pipeline on measured data.

The real paper never sees ground truth — it runs on a merged
measurement.  This test drives the full chain exactly that way:

    synthetic Internet (truth)
      → three measurement campaigns
      → merge + clean (giant component)
      → LP-CPM hierarchy + tree
      → tag analyses (IXP share, bands)

and asserts the headline findings still hold on the *measured* graph,
closing the loop between the data pipeline and the analysis pipeline.
"""

import dataclasses

import pytest

from repro.analysis import (
    AnalysisContext,
    CommunityCensus,
    IXPShareAnalysis,
    OverlapAnalysis,
    SizeAnalysis,
    derive_bands,
)
from repro.graph import is_connected
from repro.topology import (
    GeneratorConfig,
    generate_topology,
    merge_observations,
    observe_all,
)


@pytest.fixture(scope="module")
def measured_context():
    truth_dataset = generate_topology(GeneratorConfig.tiny(), seed=7)
    observations = observe_all(truth_dataset.graph, seed=11)
    measured_graph, report = merge_observations(observations)
    measured_dataset = dataclasses.replace(truth_dataset, graph=measured_graph)
    context = AnalysisContext.from_dataset(measured_dataset)
    return truth_dataset, context, report


class TestMeasuredPipeline:
    def test_measured_graph_is_clean(self, measured_context):
        _, context, report = measured_context
        assert is_connected(context.graph)
        assert report.final_edges <= report.merged_edges

    def test_single_2_clique_community(self, measured_context):
        _, context, _ = measured_context
        census = CommunityCensus(context.hierarchy)
        assert census.single_2_clique_community()

    def test_main_chain_invariants_on_measured_data(self, measured_context):
        _, context, _ = measured_context
        sizes = SizeAnalysis(context)
        assert sizes.main_is_monotone_nonincreasing()
        assert sizes.main_covers_graph_at_k2()

    def test_crown_story_survives_measurement(self, measured_context):
        """The big-three IXPs still own the top of the measured tree."""
        _, context, _ = measured_context
        share = IXPShareAnalysis(context)
        top_band = context.hierarchy.max_k - 2
        names = share.max_share_names_from(top_band)
        assert names <= {"AMS-IX", "DE-CIX", "LINX"}
        assert names  # something survives at the top

    def test_bands_derivable_from_measured_data(self, measured_context):
        _, context, _ = measured_context
        share = IXPShareAnalysis(context)
        bands = derive_bands(share, fallback=(6, 10))
        assert 2 < bands.root_max < bands.crown_min <= context.hierarchy.max_k

    def test_overlap_story_survives_measurement(self, measured_context):
        _, context, _ = measured_context
        overlap = OverlapAnalysis(context)
        assert overlap.parallel_main_mean_over_k() > 0.25

    def test_measured_depth_close_to_truth(self, measured_context):
        truth_dataset, context, _ = measured_context
        from repro.core import max_clique_size

        truth_depth = max_clique_size(truth_dataset.graph)
        assert context.hierarchy.max_k >= truth_depth - 3
