"""Undirected, unweighted, simple-graph substrate.

The paper models the Internet AS-level topology as an undirected,
unweighted graph without self-links (Expression 3.2).  This module
provides that substrate: an adjacency-set graph with the operations the
rest of the library needs (degree queries, neighborhood iteration,
induced subgraphs, edge arithmetic).

The class deliberately stores adjacency as ``dict[node, set[node]]``:
membership tests during clique enumeration are the hot path of the
Clique Percolation Method, and set lookups keep them O(1).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from typing import TypeVar

Node = TypeVar("Node", bound=Hashable)

__all__ = ["Graph", "GraphError"]


class GraphError(ValueError):
    """Raised for structurally invalid graph operations (e.g. self-loops)."""


class Graph:
    """An undirected simple graph backed by adjacency sets.

    Nodes may be any hashable value.  Self-loops are rejected because
    the paper's graph definition excludes them and k-clique semantics
    assume distinct endpoints.  Parallel edges are impossible by
    construction (adjacency is a set).

    >>> g = Graph()
    >>> g.add_edge(1, 2)
    >>> g.add_edge(2, 3)
    >>> sorted(g.neighbors(2))
    [1, 3]
    >>> g.degree(2)
    2
    """

    __slots__ = ("_adj",)

    def __init__(self, edges: Iterable[tuple[Hashable, Hashable]] | None = None) -> None:
        self._adj: dict[Hashable, set[Hashable]] = {}
        if edges is not None:
            self.add_edges_from(edges)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: Hashable) -> None:
        """Add ``node`` if absent; no-op if already present."""
        if node not in self._adj:
            self._adj[node] = set()

    def add_nodes_from(self, nodes: Iterable[Hashable]) -> None:
        """Add every node of the iterable (idempotent)."""
        for node in nodes:
            self.add_node(node)

    def add_edge(self, u: Hashable, v: Hashable) -> None:
        """Add the undirected edge {u, v}, creating endpoints as needed."""
        if u == v:
            raise GraphError(f"self-loop rejected: {u!r}")
        self.add_node(u)
        self.add_node(v)
        self._adj[u].add(v)
        self._adj[v].add(u)

    def add_edges_from(self, edges: Iterable[tuple[Hashable, Hashable]]) -> None:
        """Add every (u, v) edge of the iterable."""
        for u, v in edges:
            self.add_edge(u, v)

    def remove_edge(self, u: Hashable, v: Hashable) -> None:
        """Remove the edge {u, v}; raise ``GraphError`` if absent."""
        try:
            self._adj[u].remove(v)
            self._adj[v].remove(u)
        except KeyError as exc:
            raise GraphError(f"edge {{{u!r}, {v!r}}} not in graph") from exc

    def remove_node(self, node: Hashable) -> None:
        """Remove ``node`` and all incident edges; raise if absent."""
        try:
            neighbors = self._adj.pop(node)
        except KeyError as exc:
            raise GraphError(f"node {node!r} not in graph") from exc
        for other in neighbors:
            self._adj[other].discard(node)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, node: Hashable) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._adj)

    @property
    def number_of_nodes(self) -> int:
        return len(self._adj)

    @property
    def number_of_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def nodes(self) -> Iterator[Hashable]:
        """Iterate over the node set."""
        return iter(self._adj)

    def edges(self) -> Iterator[tuple[Hashable, Hashable]]:
        """Yield each undirected edge exactly once.

        For orderable node types each edge is yielded with endpoints in
        a deterministic orientation; for mixed/unorderable nodes the
        orientation follows insertion bookkeeping.
        """
        seen: set[Hashable] = set()
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if v not in seen:
                    yield (u, v)
            seen.add(u)

    def has_edge(self, u: Hashable, v: Hashable) -> bool:
        """True iff the undirected edge {u, v} exists."""
        nbrs = self._adj.get(u)
        return nbrs is not None and v in nbrs

    def neighbors(self, node: Hashable) -> set[Hashable]:
        """The adjacency set of ``node`` (a live reference; do not mutate)."""
        try:
            return self._adj[node]
        except KeyError as exc:
            raise GraphError(f"node {node!r} not in graph") from exc

    def degree(self, node: Hashable) -> int:
        """Number of neighbors of ``node``."""
        return len(self.neighbors(node))

    def degrees(self) -> dict[Hashable, int]:
        """Node -> degree for every node."""
        return {node: len(nbrs) for node, nbrs in self._adj.items()}

    def density(self) -> float:
        """Fraction of existing edges to possible edges ([17] in the paper).

        Defined as 0.0 for graphs with fewer than 2 nodes (no possible
        edge), matching the link-density metric used in Figure 4.4(a).
        """
        n = len(self._adj)
        if n < 2:
            return 0.0
        return 2.0 * self.number_of_edges / (n * (n - 1))

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, nodes: Iterable[Hashable]) -> "Graph":
        """The subgraph induced by ``nodes`` (unknown nodes are ignored)."""
        keep = {node for node in nodes if node in self._adj}
        sub = Graph()
        for node in keep:
            sub.add_node(node)
            for other in self._adj[node] & keep:
                sub._adj[node].add(other)
        return sub

    def copy(self) -> "Graph":
        """An independent deep copy of the adjacency structure."""
        dup = Graph()
        dup._adj = {node: set(nbrs) for node, nbrs in self._adj.items()}
        return dup

    def edge_count_within(self, nodes: Iterable[Hashable]) -> int:
        """Number of edges with both endpoints in ``nodes``.

        Cheaper than materialising :meth:`subgraph` when only the count
        is needed (the link-density hot path of Figure 4.4(a)).
        """
        keep = set(nodes)
        total = 0
        for node in keep:
            nbrs = self._adj.get(node)
            if nbrs:
                total += len(nbrs & keep)
        return total // 2

    def degree_within(self, node: Hashable, nodes: set[Hashable]) -> int:
        """Degree of ``node`` counting only neighbors inside ``nodes``.

        This is the numerator of the per-node Out Degree Fraction used
        in Figure 4.4(b).
        """
        return len(self.neighbors(node) & nodes)

    def is_clique(self, nodes: Iterable[Hashable]) -> bool:
        """True iff ``nodes`` induce a complete subgraph of this graph."""
        members = list(dict.fromkeys(nodes))
        member_set = set(members)
        if not member_set <= self._adj.keys():
            return False
        for node in members:
            if len(self._adj[node] & member_set) != len(member_set) - 1:
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(nodes={self.number_of_nodes}, edges={self.number_of_edges})"
