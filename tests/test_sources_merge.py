"""Tests for measurement simulation and the merge/clean pipeline."""

import random

import pytest

from repro.graph import is_connected
from repro.topology import (
    GeneratorConfig,
    MeasurementSource,
    MergePolicy,
    default_sources,
    generate_topology,
    merge_observations,
    observe_all,
)


@pytest.fixture(scope="module")
def truth():
    return generate_topology(GeneratorConfig.tiny(), seed=11).graph


class TestObservation:
    def test_observed_edges_are_mostly_real(self, truth):
        source = MeasurementSource("test", n_vantage_points=5, destinations_per_vp=100)
        obs = source.observe(truth, random.Random(0))
        real = obs.edges - obs.spurious
        assert real
        for edge in real:
            u, v = tuple(edge)
            assert truth.has_edge(u, v)

    def test_spurious_edges_absent_from_truth(self, truth):
        source = MeasurementSource(
            "noisy", n_vantage_points=8, destinations_per_vp=200, spurious_rate_per_mille=30
        )
        obs = source.observe(truth, random.Random(1))
        assert obs.spurious
        for edge in obs.spurious:
            u, v = tuple(edge)
            assert not truth.has_edge(u, v)

    def test_more_vantage_points_see_more(self, truth):
        small = MeasurementSource("s", 2, 50).observe(truth, random.Random(2))
        big = MeasurementSource("b", 20, 200).observe(truth, random.Random(2))
        assert big.n_edges > small.n_edges

    def test_as_graph(self, truth):
        obs = MeasurementSource("g", 3, 50).observe(truth, random.Random(3))
        graph = obs.as_graph()
        assert graph.number_of_edges == obs.n_edges

    def test_observe_all_uses_three_default_sources(self, truth):
        observations = observe_all(truth, seed=5)
        assert len(observations) == 3
        assert {o.source_name for o in observations} == {
            s.name for s in default_sources()
        }

    def test_empty_truth(self):
        from repro.graph import Graph

        obs = MeasurementSource("e", 3, 10).observe(Graph(), random.Random(0))
        assert obs.n_edges == 0


class TestMerge:
    def test_union_covers_each_source(self, truth):
        observations = observe_all(truth, seed=5)
        merged, report = merge_observations(
            observations, MergePolicy(min_sources=1, drop_isolated_single_source=False,
                                      keep_giant_component_only=False)
        )
        union = set()
        for obs in observations:
            union |= obs.edges
        assert merged.number_of_edges == len(union) == report.merged_edges

    def test_cleaning_removes_most_spurious_edges(self, truth):
        observations = observe_all(truth, seed=5)
        # Inflate noise on one source to give cleaning real work.
        noisy = MeasurementSource(
            "extra-noise", n_vantage_points=4, destinations_per_vp=150,
            spurious_rate_per_mille=50,
        ).observe(truth, random.Random(9))
        observations.append(noisy)
        merged, report = merge_observations(observations)
        spurious = set()
        for obs in observations:
            spurious |= obs.spurious
        surviving = sum(
            1 for e in spurious if merged.has_edge(*tuple(e))
        )
        # The triangle test kills uncorroborated random edges.
        assert surviving < len(spurious) * 0.2
        assert report.dropped_uncorroborated > 0

    def test_giant_component_kept(self, truth):
        observations = observe_all(truth, seed=6)
        merged, report = merge_observations(observations)
        assert is_connected(merged)
        assert report.final_nodes == merged.number_of_nodes

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            merge_observations([])

    def test_report_bookkeeping(self, truth):
        observations = observe_all(truth, seed=7)
        _, report = merge_observations(observations)
        assert set(report.edges_per_source) == {o.source_name for o in observations}
        assert report.final_edges <= report.kept_after_cleaning <= report.merged_edges
