"""Dataset construction (Section 2.1): observe, merge, clean.

Reproduces the paper's data pipeline against a known ground truth:
three simulated measurement campaigns each see a biased, noisy subset
of the topology; merging and cleaning recovers a usable graph; the
community structure of the cleaned merge is compared against the
ground truth's.

Run:  python examples/measurement_merge.py
"""

from repro import LightweightParallelCPM, generate_topology
from repro.topology import (
    GeneratorConfig,
    MergePolicy,
    merge_observations,
    observe_all,
)


def main() -> None:
    truth_dataset = generate_topology(GeneratorConfig.tiny(), seed=21)
    truth = truth_dataset.graph
    print(f"ground truth: {truth.number_of_nodes} ASes, {truth.number_of_edges} links\n")

    observations = observe_all(truth, seed=3)
    total_spurious = 0
    for obs in observations:
        real = len(obs.edges) - len(obs.spurious)
        total_spurious += len(obs.spurious)
        print(
            f"  {obs.source_name}: {len(obs.edges)} edges observed "
            f"({real} real, {len(obs.spurious)} spurious)"
        )

    merged, report = merge_observations(observations, MergePolicy())
    print(
        f"\nmerged: {report.merged_edges} edges from "
        f"{len(report.edges_per_source)} sources; "
        f"cleaning dropped {report.dropped_uncorroborated} uncorroborated edges; "
        f"final graph: {report.final_nodes} ASes / {report.final_edges} links"
    )
    surviving_spurious = sum(
        1
        for obs in observations
        for edge in obs.spurious
        if merged.has_edge(*tuple(edge))
    )
    print(
        f"spurious edges injected: {total_spurious}; survived cleaning: "
        f"{surviving_spurious}"
    )

    truth_hierarchy = LightweightParallelCPM(truth).run()
    merged_hierarchy = LightweightParallelCPM(merged).run()
    print("\ncommunity structure, truth vs cleaned merge:")
    print(f"  max k:       {truth_hierarchy.max_k} vs {merged_hierarchy.max_k}")
    print(
        f"  communities: {truth_hierarchy.total_communities} vs "
        f"{merged_hierarchy.total_communities}"
    )
    shared_orders = [k for k in truth_hierarchy.orders if k in merged_hierarchy]
    drift = {
        k: len(merged_hierarchy[k]) - len(truth_hierarchy[k])
        for k in shared_orders
        if len(merged_hierarchy[k]) != len(truth_hierarchy[k])
    }
    print(f"  per-k community-count drift (merge - truth): {drift or 'none'}")
    print(
        "\nthe dense zones survive partial observation — the paper's "
        "crown/trunk analysis is robust to the measurement process, "
        "while sparse root communities are where coverage bites"
    )


if __name__ == "__main__":
    main()
