"""Tests for the resilient-runner primitives (repro.runner)."""

import os
import pickle
import time

import pytest

from repro.runner import (
    CHECKPOINT_SCHEMA_VERSION,
    PHASES,
    BatchRetryExhausted,
    CheckpointMismatchError,
    CheckpointStore,
    FaultPlan,
    FaultRule,
    InjectedFault,
    PoolSupervisor,
    RunnerConfig,
)
from repro.obs import MetricsRegistry, Tracer, current_metrics, worker_span
from repro.runner.faults import FAULT_PLAN_ENV


class TestFaultPlanParsing:
    def test_parse_single_rule(self):
        plan = FaultPlan.parse("percolate:batch=0:kill")
        assert len(plan.rules) == 1
        rule = plan.rules[0]
        assert rule.site == "percolate"
        assert rule.action == "kill"
        assert rule.index == 0
        assert rule.times is None

    def test_parse_multiple_rules(self):
        plan = FaultPlan.parse("overlap:shard=1:raise:times=2; driver:after=overlap:kill")
        assert len(plan.rules) == 2
        assert plan.rules[0].times == 2
        assert plan.rules[1].site == "driver"
        assert plan.rules[1].after == "overlap"

    def test_parse_delay(self):
        plan = FaultPlan.parse("percolate:delay=0.25")
        assert plan.rules[0].action == "delay"
        assert plan.rules[0].seconds == 0.25

    def test_spec_round_trips(self):
        spec = "percolate:batch=1:raise:times=2;driver:after=enumerate:kill"
        assert FaultPlan.parse(spec).spec == spec

    def test_empty_spec_is_falsy(self):
        assert not FaultPlan.parse("")
        assert FaultPlan.parse("percolate:raise")

    def test_rejects_unknown_component(self):
        with pytest.raises(ValueError, match="cannot parse"):
            FaultPlan.parse("percolate:bogus=3:kill")

    def test_rejects_driver_rule_without_after(self):
        with pytest.raises(ValueError, match="after"):
            FaultPlan.parse("driver:kill")

    def test_rejects_rule_without_action(self):
        with pytest.raises(ValueError, match="needs a site and an action"):
            FaultPlan.parse("percolate:batch=0")

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(FAULT_PLAN_ENV, "percolate:batch=0:raise")
        plan = FaultPlan.from_env()
        assert plan is not None and plan.rules[0].site == "percolate"


class TestFaultPlanFiring:
    def test_raise_rule_fires_at_matching_site(self):
        plan = FaultPlan.parse("percolate:batch=0:raise")
        with pytest.raises(InjectedFault) as exc:
            plan.fire("percolate", index=0, attempt=0)
        assert exc.value.site == "percolate"
        plan.fire("percolate", index=1, attempt=0)  # other index: no fault
        plan.fire("overlap", index=0, attempt=0)  # other site: no fault

    def test_times_limits_attempts(self):
        plan = FaultPlan.parse("percolate:raise:times=2")
        for attempt in (0, 1):
            with pytest.raises(InjectedFault):
                plan.fire("percolate", attempt=attempt)
        plan.fire("percolate", attempt=2)  # healed

    def test_boundary_rule_only_fires_at_its_phase(self):
        plan = FaultPlan.parse("driver:after=overlap:raise")
        plan.fire_boundary("enumerate")
        plan.fire("overlap", index=0)  # driver rules never fire at worker sites
        with pytest.raises(InjectedFault):
            plan.fire_boundary("overlap")

    def test_delay_rule_sleeps(self):
        plan = FaultPlan.parse("overlap:delay=0.05")
        t0 = time.perf_counter()
        plan.fire("overlap", index=0)
        assert time.perf_counter() - t0 >= 0.04

    def test_injected_fault_pickles_round_trip(self):
        # A fault raised in a worker crosses the process boundary as a
        # pickle; a bad reduce turns a task failure into a broken pool.
        fault = InjectedFault("percolate", 3, 1)
        clone = pickle.loads(pickle.dumps(fault))
        assert isinstance(clone, InjectedFault)
        assert (clone.site, clone.index, clone.attempt) == ("percolate", 3, 1)

    def test_rule_matches(self):
        rule = FaultRule(site="overlap", action="raise", index=2, times=1)
        assert rule.matches("overlap", 2, 0)
        assert not rule.matches("overlap", 2, 1)
        assert not rule.matches("overlap", 0, 0)
        assert not rule.matches("percolate", 2, 0)


class TestCheckpointStore:
    def test_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.open(checksum="abc", kernel="bitset", resume=False)
        assert not store.has_phase("percolate")
        store.store_phase("percolate", {4: [[0, 1]]})
        assert store.has_phase("percolate")
        assert store.load_phase("percolate") == {4: [[0, 1]]}

    def test_meta_written_on_open(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.open(checksum="abc", kernel="set", resume=False)
        assert store.meta_path.exists()
        meta = store._read_meta()
        assert meta["schema"] == CHECKPOINT_SCHEMA_VERSION
        assert meta["checksum"] == "abc"
        assert meta["kernel"] == "set"

    def test_resume_accepts_matching_meta(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.open(checksum="abc", kernel="bitset", resume=False)
        store.store_phase("enumerate", {"cliques": []})
        again = CheckpointStore(tmp_path)
        again.open(checksum="abc", kernel="bitset", resume=True)
        assert again.has_phase("enumerate")  # content preserved

    def test_resume_rejects_checksum_mismatch(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.open(checksum="abc", kernel="bitset", resume=False)
        with pytest.raises(CheckpointMismatchError, match="checksum"):
            CheckpointStore(tmp_path).open(checksum="xyz", kernel="bitset", resume=True)

    def test_resume_rejects_kernel_mismatch(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.open(checksum="abc", kernel="bitset", resume=False)
        with pytest.raises(CheckpointMismatchError, match="kernel"):
            CheckpointStore(tmp_path).open(checksum="abc", kernel="set", resume=True)

    def test_resume_on_empty_dir_starts_fresh(self, tmp_path):
        store = CheckpointStore(tmp_path / "new")
        store.open(checksum="abc", kernel="bitset", resume=True)
        assert store.meta_path.exists()

    def test_non_resume_clears_previous_content(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.open(checksum="abc", kernel="bitset", resume=False)
        store.store_phase("percolate", {2: []})
        store.open(checksum="other", kernel="bitset", resume=False)
        assert not store.has_phase("percolate")

    def test_torn_phase_file_reads_as_missing(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.open(checksum="abc", kernel="bitset", resume=False)
        store.phase_path("overlap").write_bytes(b"\x80\x04 torn")
        assert store.load_phase("overlap") is None

    def test_corrupt_meta_raises_on_resume(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.open(checksum="abc", kernel="bitset", resume=False)
        store.meta_path.write_text("{not json", encoding="utf-8")
        with pytest.raises(CheckpointMismatchError, match="unreadable"):
            CheckpointStore(tmp_path).open(checksum="abc", kernel="bitset", resume=True)
        # ...but a fresh (non-resume) open recovers by clearing.
        CheckpointStore(tmp_path).open(checksum="abc", kernel="bitset", resume=False)

    def test_unknown_phase_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown checkpoint phase"):
            CheckpointStore(tmp_path).phase_path("bogus")
        assert set(PHASES) == {
            "shard_enumerate",
            "enumerate",
            "shard_overlap",
            "overlap",
            "shard_percolate",
            "percolate",
            "session",
        }


def _square(x: int) -> int:
    return x * x


class TestPoolSupervisor:
    def _supervisor(self, plan="", **kwargs):
        sleeps = []
        sup = PoolSupervisor(
            workers=2,
            phase="percolate",
            fault_plan=FaultPlan.parse(plan) if plan else None,
            sleep=sleeps.append,
            **kwargs,
        )
        return sup, sleeps

    def test_clean_run_returns_in_task_order(self):
        sup, _ = self._supervisor()
        assert sup.run(_square, [3, 1, 4, 1, 5]) == [9, 1, 16, 1, 25]
        assert not sup.degraded
        assert sup.restarts == 0

    def test_rejects_single_worker(self):
        with pytest.raises(ValueError, match="workers >= 2"):
            PoolSupervisor(workers=1, phase="percolate")

    def test_transient_raise_heals_with_backoff(self):
        sup, sleeps = self._supervisor("percolate:batch=0:raise:times=1")
        assert sup.run(_square, [2, 3]) == [4, 9]
        assert not sup.degraded
        assert len(sleeps) == 1  # one retry round

    def test_permanent_raise_degrades_to_fallback(self):
        sup, _ = self._supervisor(
            "percolate:batch=1:raise", config=RunnerConfig(max_retries=1)
        )
        assert sup.run(_square, [2, 3], fallback=_square) == [4, 9]
        assert sup.degraded

    def test_permanent_raise_without_fallback_raises(self):
        sup, _ = self._supervisor(
            "percolate:batch=0:raise", config=RunnerConfig(max_retries=0)
        )
        with pytest.raises(BatchRetryExhausted):
            sup.run(_square, [2, 3])

    def test_worker_kill_restarts_pool(self):
        sup, _ = self._supervisor("percolate:batch=0:kill:times=1")
        assert sup.run(_square, [2, 3]) == [4, 9]
        assert sup.restarts >= 1
        assert not sup.degraded

    def test_stalled_batch_times_out(self):
        sup, _ = self._supervisor(
            "percolate:batch=0:delay=30:times=1",
            config=RunnerConfig(batch_timeout=0.5),
        )
        t0 = time.perf_counter()
        assert sup.run(_square, [2, 3]) == [4, 9]
        assert time.perf_counter() - t0 < 20  # did not wait out the delay

    def test_on_result_sees_every_batch(self):
        seen = {}
        sup, _ = self._supervisor("percolate:batch=0:raise", config=RunnerConfig(max_retries=0))
        sup.run(_square, [2, 3], fallback=_square, on_result=seen.__setitem__)
        assert seen == {0: 4, 1: 9}

    def test_backoff_schedule(self):
        config = RunnerConfig(backoff_base=0.1, backoff_factor=2.0, backoff_max=0.3)
        assert config.backoff_seconds(1) == pytest.approx(0.1)
        assert config.backoff_seconds(2) == pytest.approx(0.2)
        assert config.backoff_seconds(5) == pytest.approx(0.3)  # capped


def _counted_square(x: int) -> int:
    """Picklable task that records worker telemetry when captured."""
    registry = current_metrics()
    if registry is not None:
        registry.inc("worker.test.calls")
    with worker_span("worker.test.square", x=x):
        return x * x


class TestWorkerTelemetryUnderFaults:
    """Spans/counters from the pool must survive retries without double-counting."""

    def _observed(self, plan="", **kwargs):
        tracer = Tracer()
        metrics = MetricsRegistry()
        sup = PoolSupervisor(
            workers=2,
            phase="percolate",
            fault_plan=FaultPlan.parse(plan) if plan else None,
            tracer=tracer,
            metrics=metrics,
            sleep=lambda _s: None,
            **kwargs,
        )
        return sup, tracer, metrics

    def test_clean_run_attributes_every_batch_once(self):
        sup, tracer, metrics = self._observed()
        assert sup.run(_counted_square, [2, 3, 4]) == [4, 9, 16]
        tracer.close()
        assert metrics.to_dict()["counters"]["worker.test.calls"] == 3
        tasks = tracer.find("worker.task")
        assert {r.attrs["batch"] for r in tasks} == {0, 1, 2}
        by_id = {r.span_id: r for r in tracer.records}
        for record in tasks:
            assert record.attrs["pid"] > 0
            assert record.attrs["worker_id"] in (0, 1)
            assert by_id[record.parent_id].name == "runner.supervise"
        # Worker-internal spans re-parent under their task span.
        for record in tracer.find("worker.test.square"):
            assert by_id[record.parent_id].name == "worker.task"

    def test_retried_batch_counts_once(self):
        sup, tracer, metrics = self._observed("percolate:batch=0:raise:times=1")
        assert sup.run(_counted_square, [2, 3]) == [4, 9]
        tracer.close()
        # The failed attempt shipped nothing: one call per batch, and
        # batch 0's surviving span is the retry that succeeded.
        assert metrics.to_dict()["counters"]["worker.test.calls"] == 2
        assert len(tracer.find("worker.test.square")) == 2
        batch0 = [r for r in tracer.find("worker.task") if r.attrs["batch"] == 0]
        assert len(batch0) == 1
        assert batch0[0].attrs["attempt"] == 1

    def test_degraded_batch_counts_once_in_driver(self):
        sup, tracer, metrics = self._observed(
            "percolate:batch=1:raise", config=RunnerConfig(max_retries=1)
        )
        assert sup.run(_counted_square, [2, 3], fallback=_counted_square) == [4, 9]
        tracer.close()
        assert sup.degraded
        counters = metrics.to_dict()["counters"]
        assert counters["worker.test.calls"] == 2
        fallbacks = [
            r for r in tracer.find("worker.task") if r.attrs["attempt"] == -1
        ]
        assert len(fallbacks) == 1
        assert fallbacks[0].attrs["batch"] == 1
        # The serial fallback runs in (and attributes to) the driver.
        assert fallbacks[0].attrs["pid"] == os.getpid()

    def test_telemetry_off_ships_bare_results(self):
        sup, tracer, metrics = self._observed(telemetry=False)
        assert sup.run(_counted_square, [2, 3]) == [4, 9]
        tracer.close()
        assert tracer.find("worker.task") == []
        assert "worker.test.calls" not in metrics.to_dict()["counters"]

    def test_uninstrumented_supervisor_defaults_telemetry_off(self):
        sup = PoolSupervisor(workers=2, phase="percolate")
        assert sup.telemetry is False
        assert sup.run(_counted_square, [3]) == [9]


class TestKillExitCode:
    def test_kill_exit_code_is_distinctive(self):
        from repro.runner.faults import KILL_EXIT_CODE

        assert KILL_EXIT_CODE == 173
        assert KILL_EXIT_CODE != os.EX_OK
