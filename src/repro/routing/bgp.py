"""Policy routing: Gao–Rexford route computation.

BGP routes are chosen by economics, not distance: an AS prefers routes
through its customers (it gets paid) over routes through peers (free)
over routes through providers (it pays), and only exports to a
neighbor the routes that neighbor is allowed to resell — which yields
exactly the valley-free paths of Gao's model.

:class:`BGPSimulator` computes, for one destination AS, the stable
route of every other AS under these preferences (customer > peer >
provider, then shortest AS path, then lowest-numbered next hop — a
deterministic tie-break standing in for router IDs).  The propagation
is the standard three-stage relaxation:

1. **customer routes** climb provider edges from the destination
   (breadth-first, so shortest-uphill wins);
2. **peer routes** cross one peering edge from any routed AS;
3. **provider routes** descend customer edges from any routed AS.

Each stage only improves unrouted-or-worse nodes, giving the unique
Gao-Rexford stable state on relationship graphs without customer-
provider cycles (which the generator's strata guarantee).
"""

from __future__ import annotations

import heapq
from collections.abc import Hashable
from dataclasses import dataclass
from enum import IntEnum

from ..graph.undirected import Graph
from .relationships import Relationship, RelationshipMap

__all__ = ["RouteKind", "Route", "BGPSimulator"]


class RouteKind(IntEnum):
    """Route preference tiers (lower is better)."""

    SELF = 0
    CUSTOMER = 1
    PEER = 2
    PROVIDER = 3


@dataclass(frozen=True)
class Route:
    """One AS's best route to the destination."""

    kind: RouteKind
    path: tuple[Hashable, ...]  # this AS first, destination last

    @property
    def length(self) -> int:
        return len(self.path) - 1


class BGPSimulator:
    """Compute Gao-Rexford routes on a relationship-annotated graph."""

    def __init__(self, graph: Graph, relationships: RelationshipMap) -> None:
        self.graph = graph
        self.relationships = relationships

    def routes_to(self, destination: Hashable) -> dict[Hashable, Route]:
        """Best route of every AS towards ``destination``.

        ASes with no policy-compliant route are absent from the result
        (possible when the destination has no providers and a remote AS
        has no downhill path to it).
        """
        if destination not in self.graph:
            raise KeyError(f"destination {destination!r} not in graph")
        routes: dict[Hashable, Route] = {
            destination: Route(RouteKind.SELF, (destination,))
        }

        # Stage 1 — customer routes climb provider edges breadth-first.
        frontier: list[tuple[int, object, Hashable]] = [(0, _key(destination), destination)]
        while frontier:
            dist, _, node = heapq.heappop(frontier)
            route = routes[node]
            if route.length != dist:
                continue  # stale entry
            for neighbor in sorted(self.graph.neighbors(node), key=_key):
                # The neighbor learns the route from its CUSTOMER side.
                if self.relationships.kind(neighbor, node) is not Relationship.CUSTOMER:
                    continue
                candidate = Route(RouteKind.CUSTOMER, (neighbor, *route.path))
                if self._better(candidate, routes.get(neighbor)):
                    routes[neighbor] = candidate
                    heapq.heappush(frontier, (candidate.length, _key(neighbor), neighbor))

        # Stage 2 — one peering hop from any customer-routed AS.
        uphill = list(routes.items())
        for node, route in sorted(uphill, key=lambda kv: (kv[1].length, _key(kv[0]))):
            for neighbor in sorted(self.graph.neighbors(node), key=_key):
                if self.relationships.kind(neighbor, node) is not Relationship.PEER:
                    continue
                if node in (destination,) or route.kind in (RouteKind.SELF, RouteKind.CUSTOMER):
                    candidate = Route(RouteKind.PEER, (neighbor, *route.path))
                    if self._better(candidate, routes.get(neighbor)):
                        routes[neighbor] = candidate

        # Stage 3 — provider routes descend customer edges from any
        # routed AS (a provider exports everything to its customers).
        frontier = [
            (route.length, _key(node), node) for node, route in routes.items()
        ]
        heapq.heapify(frontier)
        while frontier:
            dist, _, node = heapq.heappop(frontier)
            route = routes.get(node)
            if route is None or route.length != dist:
                continue
            for neighbor in sorted(self.graph.neighbors(node), key=_key):
                if self.relationships.kind(neighbor, node) is not Relationship.PROVIDER:
                    continue
                candidate = Route(RouteKind.PROVIDER, (neighbor, *route.path))
                if self._better(candidate, routes.get(neighbor)):
                    routes[neighbor] = candidate
                    heapq.heappush(frontier, (candidate.length, _key(neighbor), neighbor))
        return routes

    def path(self, source: Hashable, destination: Hashable) -> tuple[Hashable, ...] | None:
        """The AS path from ``source`` to ``destination`` (None if unrouted)."""
        route = self.routes_to(destination).get(source)
        return route.path if route else None

    @staticmethod
    def _better(candidate: Route, incumbent: Route | None) -> bool:
        if incumbent is None:
            return True
        if candidate.kind != incumbent.kind:
            return candidate.kind < incumbent.kind
        if candidate.length != incumbent.length:
            return candidate.length < incumbent.length
        # Deterministic router-id tie-break on the next hop.
        return _key(candidate.path[1]) < _key(incumbent.path[1])


def _key(node: Hashable):
    """Stable ordering key for heterogeneous node types."""
    return (str(type(node).__name__), repr(node))
