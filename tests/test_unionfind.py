"""Unit tests for the disjoint-set forests."""

import random
from array import array

from repro.core import IntUnionFind, UnionFind


class TestUnionFind:
    def test_initial_items_are_singletons(self):
        uf = UnionFind([1, 2, 3])
        assert len(uf) == 3
        assert not uf.connected(1, 2)

    def test_union_merges(self):
        uf = UnionFind()
        assert uf.union(1, 2)
        assert uf.connected(1, 2)

    def test_union_of_merged_returns_false(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(2, 3)
        assert not uf.union(1, 3)

    def test_transitivity(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("c", "d")
        uf.union("b", "c")
        assert uf.connected("a", "d")

    def test_find_auto_registers(self):
        uf = UnionFind()
        assert uf.find(42) == 42
        assert 42 in uf

    def test_set_size(self):
        uf = UnionFind()
        uf.union(1, 2)
        uf.union(2, 3)
        assert uf.set_size(1) == 3
        assert uf.set_size(9) == 1

    def test_groups_sorted_by_size(self):
        uf = UnionFind(range(6))
        uf.union(0, 1)
        uf.union(1, 2)
        uf.union(4, 5)
        groups = uf.groups()
        assert [len(g) for g in groups] == [3, 2, 1]
        assert {0, 1, 2} in groups

    def test_large_chain_path_compression(self):
        uf = UnionFind()
        for i in range(1000):
            uf.union(i, i + 1)
        assert uf.connected(0, 1000)
        assert uf.set_size(500) == 1001


class TestIntUnionFind:
    def test_singletons(self):
        uf = IntUnionFind(3)
        assert len(uf) == 3
        assert not uf.connected(0, 2)
        assert uf.groups() == [[0], [1], [2]]

    def test_union_and_set_size(self):
        uf = IntUnionFind(5)
        assert uf.union(0, 3)
        assert not uf.union(3, 0)
        uf.union(3, 4)
        assert uf.connected(0, 4)
        assert uf.set_size(4) == 3
        assert uf.set_size(1) == 1

    def test_union_packed_matches_individual_unions(self):
        rng = random.Random(99)
        n, shift = 64, 7
        pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(200)]
        packed = array("q", [(i << shift) | j for i, j in pairs])
        a = IntUnionFind(n)
        merges = a.union_packed(packed, shift)
        b = IntUnionFind(n)
        assert merges == sum(b.union(i, j) for i, j in pairs)
        assert a.groups() == b.groups()

    def test_groups_limit_is_prefix_snapshot(self):
        uf = IntUnionFind(6)
        uf.union(0, 1)
        uf.union(4, 5)
        assert uf.groups(4) == [[0, 1], [2], [3]]
        assert uf.groups(0) == []

    def test_matches_reference_group_for_group(self):
        """Same partition, same order as UnionFind over range(n)."""
        rng = random.Random(7)
        for trial in range(20):
            n = rng.randrange(1, 60)
            pairs = [
                (rng.randrange(n), rng.randrange(n))
                for _ in range(rng.randrange(2 * n))
            ]
            fast = IntUnionFind(n)
            reference = UnionFind(range(n))
            for i, j in pairs:
                assert fast.union(i, j) == reference.union(i, j)
            assert fast.groups() == [sorted(g) for g in reference.groups()]
